//! Exhaustive verification of an encoding plan.
//!
//! The heart of the test suite: enumerate calling contexts of the encoded
//! graph (paths from the roots, with a bounded budget of recursion
//! back-edge traversals), replay each through the real runtime state
//! machine ([`DeltaState`]), and check the two properties the paper claims:
//!
//! 1. **Round-trip**: decoding the encoded context yields exactly the
//!    original method sequence;
//! 2. **Injectivity**: distinct contexts produce distinct encoded values.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use deltapath_callgraph::{EdgeIx, NodeIx};
use deltapath_ir::MethodId;

use crate::context::EncodedContext;
use crate::error::DecodeError;
use crate::plan::EncodingPlan;
use crate::state::DeltaState;

/// Summary of a successful verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Number of contexts enumerated and checked.
    pub contexts: usize,
    /// Number of distinct encoded values (equals `contexts` on success).
    pub unique: usize,
    /// Whether enumeration was truncated by `max_contexts`.
    pub truncated: bool,
}

/// A verification failure, carrying enough context to reproduce it.
#[derive(Clone, Debug)]
pub enum VerifyFailure {
    /// Decoding failed outright.
    Decode {
        /// The failing context.
        context: EncodedContext,
        /// The decoder's error.
        error: DecodeError,
    },
    /// Decoding succeeded but produced the wrong method sequence.
    Mismatch {
        /// The failing context.
        context: EncodedContext,
        /// What the execution actually traversed.
        expected: Vec<MethodId>,
        /// What the decoder returned.
        decoded: Vec<MethodId>,
    },
    /// Two distinct contexts encoded identically.
    Collision {
        /// The shared encoded value.
        context: EncodedContext,
        /// The method sequence of the first context that produced the
        /// value.
        first: Vec<MethodId>,
        /// The method sequence of the second, distinct context that
        /// collided with it.
        second: Vec<MethodId>,
    },
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyFailure::Decode { context, error } => {
                write!(f, "decode of {context} failed: {error}")
            }
            VerifyFailure::Mismatch {
                context,
                expected,
                decoded,
            } => write!(
                f,
                "decode of {context} returned {decoded:?}, expected {expected:?}"
            ),
            VerifyFailure::Collision {
                context,
                first,
                second,
            } => {
                write!(
                    f,
                    "distinct contexts {first:?} and {second:?} both encoded to {context}"
                )
            }
        }
    }
}

impl Error for VerifyFailure {}

/// Enumerates call paths from every root of the plan's graph.
///
/// A path is a sequence of edges; the empty path at each root is included
/// (the root's own context). Each path may traverse at most
/// `back_edge_budget` recursion back edges in total, so recursive cycles are
/// exercised without diverging. Enumeration stops after `max_contexts`
/// paths.
pub fn enumerate_paths(
    plan: &EncodingPlan,
    back_edge_budget: usize,
    max_contexts: usize,
) -> (Vec<(NodeIx, Vec<EdgeIx>)>, bool) {
    let graph = plan.graph();
    let excluded = &plan.encoding().excluded;
    let mut out: Vec<(NodeIx, Vec<EdgeIx>)> = Vec::new();
    let mut truncated = false;

    for &root in graph.roots() {
        // Depth-first enumeration with an explicit stack of (node, path,
        // remaining back-edge budget).
        let mut stack: Vec<(NodeIx, Vec<EdgeIx>, usize)> =
            vec![(root, Vec::new(), back_edge_budget)];
        while let Some((node, path, budget)) = stack.pop() {
            if out.len() >= max_contexts {
                truncated = true;
                break;
            }
            out.push((root, path.clone()));
            for &e in graph.out_edges(node) {
                let is_back = excluded.contains(&e);
                if is_back && budget == 0 {
                    continue;
                }
                let mut next = path.clone();
                next.push(e);
                stack.push((
                    graph.edge(e).callee,
                    next,
                    if is_back { budget - 1 } else { budget },
                ));
            }
        }
        if truncated {
            break;
        }
    }
    (out, truncated)
}

/// Replays `path` (starting at `root`) through the runtime state machine,
/// returning the encoded context and the true method sequence.
pub fn simulate_path(
    plan: &EncodingPlan,
    root: NodeIx,
    path: &[EdgeIx],
) -> (EncodedContext, Vec<MethodId>) {
    let graph = plan.graph();
    let root_method = graph.method_of(root);
    let mut state = DeltaState::start(root_method);
    let mut methods = vec![root_method];
    let mut at = root_method;
    for &e in path {
        let edge = graph.edge(e);
        let callee = graph.method_of(edge.callee);
        state.on_call(plan, edge.site);
        state.on_entry(plan, callee, Some(edge.site));
        methods.push(callee);
        at = callee;
    }
    (state.snapshot(at), methods)
}

/// Runs the full verification: round-trip and injectivity over all
/// enumerated contexts.
///
/// # Errors
///
/// The first [`VerifyFailure`] encountered.
pub fn verify_plan(
    plan: &EncodingPlan,
    back_edge_budget: usize,
    max_contexts: usize,
) -> Result<VerifyReport, VerifyFailure> {
    let (paths, truncated) = enumerate_paths(plan, back_edge_budget, max_contexts);
    let decoder = plan.decoder();
    // Map each encoded value to the method sequence that produced it, so a
    // collision report can name *both* colliding contexts.
    let mut seen: HashMap<EncodedContext, Vec<MethodId>> = HashMap::new();
    for (root, path) in &paths {
        let (context, expected) = simulate_path(plan, *root, path);
        // Injectivity first: when two distinct executions produce the same
        // encoded context, reporting the colliding pair is the root cause —
        // the decode failure that would also occur is only its symptom.
        match seen.entry(context.clone()) {
            std::collections::hash_map::Entry::Occupied(prev) => {
                if prev.get() != &expected {
                    return Err(VerifyFailure::Collision {
                        context,
                        first: prev.get().clone(),
                        second: expected,
                    });
                }
                continue; // Same method sequence again (e.g. via another site order).
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(expected.clone());
            }
        }
        match decoder.decode(&context) {
            Ok(decoded) => {
                if decoded != expected {
                    return Err(VerifyFailure::Mismatch {
                        context,
                        expected,
                        decoded,
                    });
                }
            }
            Err(error) => return Err(VerifyFailure::Decode { context, error }),
        }
    }
    Ok(VerifyReport {
        contexts: paths.len(),
        unique: seen.len(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{EncodingPlan, PlanConfig};
    use crate::width::EncodingWidth;
    use deltapath_ir::{MethodKind, Program, ProgramBuilder, Receiver};

    fn verify(p: &Program, config: &PlanConfig) -> VerifyReport {
        let plan = EncodingPlan::analyze(p, config).unwrap();
        verify_plan(&plan, 2, 100_000).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn verifies_virtual_dispatch_program() {
        let mut b = ProgramBuilder::new("v");
        let a = b.add_class("A", None);
        let c1 = b.add_class("C1", Some(a));
        let c2 = b.add_class("C2", Some(a));
        b.method(a, "f", MethodKind::Virtual)
            .body(|f| {
                f.call(a, "leaf");
            })
            .finish();
        b.method(c1, "f", MethodKind::Virtual)
            .body(|f| {
                f.call(a, "leaf");
                f.call(a, "leaf");
            })
            .finish();
        b.method(c2, "f", MethodKind::Virtual).finish();
        b.method(a, "leaf", MethodKind::Static).finish();
        let main = b
            .method(a, "main", MethodKind::Static)
            .body(|f| {
                f.vcall(a, "f", Receiver::Cycle(vec![a, c1, c2]));
                f.vcall(a, "f", Receiver::Cycle(vec![c1, c2]));
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let report = verify(&p, &PlanConfig::default());
        assert!(report.contexts > 5);
        assert_eq!(report.contexts, report.unique);
        assert!(!report.truncated);
    }

    #[test]
    fn verifies_recursive_program() {
        let mut b = ProgramBuilder::new("rec");
        let c = b.add_class("C", None);
        // Mutual recursion: ping -> pong -> ping, plus a leaf below.
        b.method(c, "leaf", MethodKind::Static).finish();
        b.method(c, "ping", MethodKind::Static)
            .body(|f| {
                f.call(c, "pong");
                f.call(c, "leaf");
            })
            .finish();
        b.method(c, "pong", MethodKind::Static)
            .body(|f| {
                f.call(c, "ping");
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "ping");
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let report = verify(&p, &PlanConfig::default());
        assert!(report.contexts >= 10);
    }

    #[test]
    fn verifies_with_tiny_width_and_anchors() {
        // Wide level-to-level layers force overflow anchors at small widths;
        // round-trip and injectivity must survive the piece subdivision.
        let p = wide_program();
        let cfg = PlanConfig::default().with_width(EncodingWidth::new(3));
        let plan = EncodingPlan::analyze(&p, &cfg).unwrap();
        assert!(plan.encoding().overflow_anchor_count() > 0);
        let report = verify_plan(&plan, 0, 100_000).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.contexts, report.unique);
        assert!(report.contexts > 50);
    }

    /// 6 levels of 2 nodes each, fully connected level-to-level, ending in a
    /// sink: 2^6 contexts at the sink.
    fn wide_program() -> Program {
        let mut b = ProgramBuilder::new("wide");
        let c = b.add_class("C", None);
        b.method(c, "sink", MethodKind::Static).finish();
        // Declare bottom-up so bodies can reference the next level.
        for level in (0..6).rev() {
            for side in 0..2 {
                let name = format!("n_{level}_{side}");
                b.method(c, &name, MethodKind::Static)
                    .body(|f| {
                        if level == 5 {
                            f.call(c, "sink");
                        } else {
                            f.call(c, &format!("n_{}_0", level + 1));
                            f.call(c, &format!("n_{}_1", level + 1));
                        }
                    })
                    .finish();
            }
        }
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "n_0_0");
                f.call(c, "n_0_1");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn enumeration_respects_max_contexts() {
        let p = wide_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let (paths, truncated) = enumerate_paths(&plan, 0, 10);
        assert_eq!(paths.len(), 10);
        assert!(truncated);
    }
}
