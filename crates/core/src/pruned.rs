//! Pruned encoding (paper Section 8, "Pruned and Relative Encoding").
//!
//! When the user only ever queries the calling contexts of a known set of
//! *target* functions (event logging, targeted profiling), every method that
//! cannot lead to a target needs no encoding operations at all. This module
//! restricts a call graph to the methods from which some target is
//! reachable; an [`EncodingPlan`](crate::EncodingPlan) built over the pruned
//! graph (via [`EncodingPlan::from_graph`](crate::EncodingPlan::from_graph))
//! instruments only that subgraph.
//!
//! Methods outside the pruned graph behave exactly like scope-excluded code:
//! call-path tracking keeps the encoding correct if control re-enters the
//! pruned region (which, by construction, cannot happen on a path that later
//! reaches a target *through* pruned-out methods — those would have been
//! kept).

use std::collections::HashSet;

use deltapath_callgraph::{reaches_to, CallGraph};
use deltapath_ir::MethodId;

/// Restricts `graph` to the nodes from which any of `targets` is reachable
/// (targets included), preserving roots that survive and promoting nodes
/// whose remaining callers were all pruned.
///
/// Methods in `targets` that are not in `graph` are ignored.
pub fn prune_to_targets(graph: &CallGraph, targets: &[MethodId]) -> CallGraph {
    let target_nodes: Vec<_> = targets.iter().filter_map(|&m| graph.node_of(m)).collect();
    let keep = reaches_to(graph, &target_nodes, &HashSet::new());

    let mut pruned = CallGraph::empty();
    for node in graph.nodes() {
        if keep[node.index()] {
            pruned.add_node(graph.method_of(node));
        }
    }
    for edge in graph.edges() {
        if keep[edge.caller.index()] && keep[edge.callee.index()] {
            let c = pruned.add_node(graph.method_of(edge.caller));
            let t = pruned.add_node(graph.method_of(edge.callee));
            pruned.add_edge(c, t, edge.site);
        }
    }
    if let Some(entry) = graph.entry() {
        if keep[entry.index()] {
            let e = pruned.add_node(graph.method_of(entry));
            pruned.set_entry(e);
        }
    }
    for &root in graph.roots() {
        if keep[root.index()] {
            let r = pruned.add_node(graph.method_of(root));
            pruned.add_root(r);
        }
    }
    // Nodes that lost all their callers become entry points of the pruned
    // region (reached through pruned-out code at runtime).
    let orphans: Vec<_> = pruned
        .nodes()
        .filter(|&n| pruned.in_edges(n).is_empty())
        .collect();
    for n in orphans {
        pruned.add_root(n);
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_callgraph::{Analysis, GraphConfig};
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    /// Figure 4-shaped program in spirit: main -> {d, e}; d -> target;
    /// e -> other. Pruning to `target` must drop e and other.
    fn program() -> Program {
        let mut b = ProgramBuilder::new("pruned");
        let c = b.add_class("C", None);
        b.method(c, "target", MethodKind::Static).finish();
        b.method(c, "other", MethodKind::Static).finish();
        b.method(c, "d", MethodKind::Static)
            .body(|f| {
                f.call(c, "target");
            })
            .finish();
        b.method(c, "e", MethodKind::Static)
            .body(|f| {
                f.call(c, "other");
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "d");
                f.call(c, "e");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    fn method(p: &Program, name: &str) -> MethodId {
        p.declared_method(
            p.class_by_name("C").unwrap(),
            p.symbols().lookup(name).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn prune_keeps_only_paths_to_targets() {
        let p = program();
        let g = CallGraph::build(&p, &GraphConfig::new(Analysis::Cha));
        let pruned = prune_to_targets(&g, &[method(&p, "target")]);
        assert_eq!(pruned.node_count(), 3); // main, d, target
        assert_eq!(pruned.edge_count(), 2);
        assert!(pruned.node_of(method(&p, "e")).is_none());
        assert!(pruned.node_of(method(&p, "other")).is_none());
        assert_eq!(pruned.entry().map(|e| pruned.method_of(e)), Some(p.entry()));
    }

    #[test]
    fn pruned_plan_encodes_target_contexts() {
        let p = program();
        let g = CallGraph::build(&p, &GraphConfig::new(Analysis::Cha));
        let pruned = prune_to_targets(&g, &[method(&p, "target")]);
        let plan =
            crate::EncodingPlan::from_graph(&p, pruned, &crate::PlanConfig::default()).unwrap();
        // Only the two sites on the main->d->target chain are instrumented.
        assert_eq!(plan.instrumented_site_count(), 2);
        assert!(plan.entry(method(&p, "e")).is_none());
    }

    #[test]
    fn unknown_targets_are_ignored() {
        let p = program();
        let g = CallGraph::build(&p, &GraphConfig::new(Analysis::Cha));
        let pruned = prune_to_targets(&g, &[MethodId::from_index(999)]);
        assert_eq!(pruned.node_count(), 0);
    }
}
