//! Precise decoding of encoded calling contexts.
//!
//! Decoding recovers the context bottom-up, piece by piece (paper Sections 2
//! and 3.2): the current ID decodes the piece since the top stack frame;
//! each frame then tells where the piece below ends and with which saved ID
//! to continue.
//!
//! * Pieces rooted at an **anchor** decode exactly: at every node, the
//!   unique incoming edge whose sub-range `[av, av + ICC[pred][anchor])`
//!   contains the remaining ID is taken (restricted to edges in the
//!   anchor's territory). The algorithm's invariant makes the choice
//!   unambiguous.
//! * Pieces rooted at a **hazardous-UCP entry** start at an arbitrary
//!   method, for which no per-anchor tables exist. These are decoded by a
//!   memoized backward path search for the unique path whose addition
//!   values sum to the ID; an ambiguous sum is reported as
//!   [`DecodeError::Ambiguous`] rather than guessed (UCP pieces are rare
//!   and short — Table 2 measures 0–1.8 per context — so the search is
//!   cheap in practice). When the UCP entry happens to be an anchor (e.g. a
//!   scope-filter root), the exact decoder is used instead.
//!
//! The decoder never fabricates a context: every structural inconsistency
//! in its input surfaces as a [`DecodeError`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use deltapath_callgraph::{reachable_from, NodeIx};
use deltapath_ir::MethodId;
use deltapath_telemetry::{names, Telemetry};

use crate::context::{EncodedContext, FrameTag};
use crate::error::DecodeError;
use crate::plan::EncodingPlan;

/// Options controlling the decoder.
#[derive(Clone, Copy, Debug)]
pub struct DecodeOptions {
    /// Maximum number of memo entries for search decoding of UCP pieces;
    /// exceeding it yields [`DecodeError::DepthExceeded`].
    pub search_state_limit: usize,
    /// Maximum number of decoded pieces memoized across calls, keyed by
    /// `(piece root, piece end, id)`. Repeated hot contexts — the common
    /// case when draining a sharded collector — then decode in O(frames)
    /// instead of re-running the per-piece walk. `0` disables the cache.
    /// Once full the cache stops admitting new pieces rather than
    /// evicting (piece popularity is heavily skewed, so the first
    /// `piece_cache_capacity` distinct pieces are the ones worth
    /// keeping).
    pub piece_cache_capacity: usize,
}

impl Default for DecodeOptions {
    /// A generous search budget (1 Mi states) and a 64 Ki-piece cache.
    fn default() -> Self {
        Self {
            search_state_limit: 1 << 20,
            piece_cache_capacity: 1 << 16,
        }
    }
}

/// A decoded piece keyed by `(piece root, piece end, piece id)` — the
/// complete input of one piece decode, shared out of the cache by `Rc`.
type PieceCache = HashMap<(NodeIx, NodeIx, u128), Rc<Vec<NodeIx>>>;

/// A decoder over one [`EncodingPlan`].
///
/// Obtain via [`EncodingPlan::decoder`]. The decoder caches per-root
/// reachability sets for UCP-piece searches, so reuse one decoder when
/// decoding many contexts.
#[derive(Debug)]
pub struct Decoder<'a> {
    plan: &'a EncodingPlan,
    options: DecodeOptions,
    reach_cache: RefCell<HashMap<NodeIx, Rc<Vec<bool>>>>,
    piece_cache: RefCell<PieceCache>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder with the given options.
    pub fn new(plan: &'a EncodingPlan, options: DecodeOptions) -> Self {
        Self {
            plan,
            options,
            reach_cache: RefCell::new(HashMap::new()),
            piece_cache: RefCell::new(HashMap::new()),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    /// `(hits, misses)` of the piece cache since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// Emits the piece-cache counters
    /// ([`names::DECODER_PIECE_CACHE_HITS`] /
    /// [`names::DECODER_PIECE_CACHE_MISSES`]) into `sink`.
    pub fn report_telemetry(&self, sink: &dyn Telemetry) {
        if !sink.enabled() {
            return;
        }
        sink.counter_add(names::DECODER_PIECE_CACHE_HITS, self.cache_hits.get());
        sink.counter_add(names::DECODER_PIECE_CACHE_MISSES, self.cache_misses.get());
    }

    /// Decodes `ctx` into the full method sequence, outermost first.
    ///
    /// The result contains exactly the *encoded* methods: dynamically loaded
    /// or scope-excluded detours appear as adjacent methods with the detour
    /// elided, exactly as the paper's Figure 7 recovers `A B G` from the
    /// concrete path `A B D F G`.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; corrupted or hand-built inconsistent contexts
    /// are rejected, never mis-decoded.
    pub fn decode(&self, ctx: &EncodedContext) -> Result<Vec<MethodId>, DecodeError> {
        let graph = self.plan.graph();
        if ctx.frames.is_empty() {
            return Err(DecodeError::EmptyStack);
        }
        let mut result: Vec<NodeIx> = Vec::new();
        let mut cur_end = self.node_of(ctx.at)?;
        let mut cur_id = u128::from(ctx.id);

        for (i, frame) in ctx.frames.iter().enumerate().rev() {
            let start = self.node_of(frame.node)?;
            let piece = self.decode_piece(start, cur_end, cur_id)?;
            let is_bottom = i == 0;
            match frame.tag {
                FrameTag::Anchor => {
                    if is_bottom {
                        splice_front(&mut result, &piece);
                    } else {
                        // The anchor node is also the end of the piece below.
                        splice_front(&mut result, &piece[1..]);
                        cur_end = start;
                        cur_id = u128::from(frame.saved_id);
                    }
                }
                FrameTag::Recursion | FrameTag::Ucp => {
                    if is_bottom {
                        return Err(DecodeError::BadBottomFrame);
                    }
                    let site = frame
                        .site
                        .ok_or(DecodeError::UnattributedUcp { node: frame.node })?;
                    let instr = self.plan.site(site).ok_or(DecodeError::UnknownSite(site))?;
                    splice_front(&mut result, &piece);
                    cur_end = self.node_of(instr.caller)?;
                    cur_id = u128::from(frame.saved_id)
                        .checked_sub(u128::from(instr.av))
                        .ok_or(DecodeError::CorruptFrame { site })?;
                }
            }
        }
        Ok(result.into_iter().map(|n| graph.method_of(n)).collect())
    }

    fn node_of(&self, method: MethodId) -> Result<NodeIx, DecodeError> {
        self.plan
            .graph()
            .node_of(method)
            .ok_or(DecodeError::UnknownMethod(method))
    }

    /// Decodes one piece: the path `start..=end` whose addition values sum
    /// to `id`. Successful decodes are memoized (a piece's path depends
    /// only on the immutable plan and the key) so hot contexts replay in
    /// O(frames) amortized.
    fn decode_piece(
        &self,
        start: NodeIx,
        end: NodeIx,
        id: u128,
    ) -> Result<Rc<Vec<NodeIx>>, DecodeError> {
        let key = (start, end, id);
        if self.options.piece_cache_capacity > 0 {
            if let Some(piece) = self.piece_cache.borrow().get(&key) {
                self.cache_hits.set(self.cache_hits.get() + 1);
                return Ok(piece.clone());
            }
        }
        self.cache_misses.set(self.cache_misses.get() + 1);
        let piece = Rc::new(if self.plan.encoding().is_anchor[start.index()] {
            self.decode_anchor_piece(start, end, id)?
        } else {
            self.decode_search_piece(start, end, id)?
        });
        if self.options.piece_cache_capacity > 0 {
            let mut cache = self.piece_cache.borrow_mut();
            if cache.len() < self.options.piece_cache_capacity {
                cache.insert(key, piece.clone());
            }
        }
        Ok(piece)
    }

    /// Exact greedy decoding within an anchor's territory.
    fn decode_anchor_piece(
        &self,
        anchor: NodeIx,
        end: NodeIx,
        id: u128,
    ) -> Result<Vec<NodeIx>, DecodeError> {
        let graph = self.plan.graph();
        let enc = self.plan.encoding();
        let mut path = vec![end];
        let mut cur = end;
        let mut v = id;
        while cur != anchor {
            let mut chosen: Option<(NodeIx, u128)> = None;
            for &e in graph.in_edges(cur) {
                if enc.excluded.contains(&e) {
                    continue;
                }
                if !enc.eanchors[e.index()].contains(&anchor) {
                    continue;
                }
                let edge = graph.edge(e);
                let av = enc.edge_av(graph, e);
                let Some(icc) = enc.icc_of(edge.caller, anchor) else {
                    continue;
                };
                if av <= v && v < av.saturating_add(icc) {
                    if chosen.is_some() {
                        // The sub-range invariant guarantees disjointness;
                        // two matches mean the plan is corrupt.
                        return Err(DecodeError::Ambiguous {
                            root: graph.method_of(anchor),
                            at: graph.method_of(end),
                        });
                    }
                    chosen = Some((edge.caller, av));
                }
            }
            let Some((pred, av)) = chosen else {
                return Err(DecodeError::NoMatchingEdge {
                    at: graph.method_of(cur),
                    id: v,
                });
            };
            v -= av;
            cur = pred;
            path.push(cur);
        }
        if v != 0 {
            return Err(DecodeError::NonZeroAtRoot {
                root: graph.method_of(anchor),
                id: v,
            });
        }
        path.reverse();
        Ok(path)
    }

    /// Search decoding for pieces rooted at a non-anchor (hazardous-UCP
    /// entry): counts, with memoization, the paths from `start` to `end`
    /// whose addition values sum to `id`, and reconstructs the unique one.
    fn decode_search_piece(
        &self,
        start: NodeIx,
        end: NodeIx,
        id: u128,
    ) -> Result<Vec<NodeIx>, DecodeError> {
        let graph = self.plan.graph();
        let enc = self.plan.encoding();
        let reach = {
            let mut cache = self.reach_cache.borrow_mut();
            cache
                .entry(start)
                .or_insert_with(|| std::rc::Rc::new(reachable_from(graph, &[start], &enc.excluded)))
                .clone()
        };
        let limit = self.options.search_state_limit;
        let mut memo: HashMap<(NodeIx, u128), u8> = HashMap::new();

        // Iterative post-order evaluation of count(node, v) = number of
        // start-to-node paths summing to v, saturated at 2.
        #[allow(clippy::too_many_arguments)]
        fn count(
            graph: &deltapath_callgraph::CallGraph,
            enc: &crate::algo2::Encoding,
            reach: &[bool],
            start: NodeIx,
            node: NodeIx,
            v: u128,
            memo: &mut HashMap<(NodeIx, u128), u8>,
            limit: usize,
        ) -> Result<u8, DecodeError> {
            if node == start {
                return Ok(u8::from(v == 0));
            }
            if let Some(&c) = memo.get(&(node, v)) {
                return Ok(c);
            }
            if memo.len() >= limit {
                return Err(DecodeError::DepthExceeded { limit });
            }
            let mut total: u8 = 0;
            for &e in graph.in_edges(node) {
                if enc.excluded.contains(&e) {
                    continue;
                }
                let edge = graph.edge(e);
                if !reach[edge.caller.index()] {
                    continue;
                }
                let av = enc.edge_av(graph, e);
                if av > v {
                    continue;
                }
                total = total
                    .saturating_add(count(
                        graph,
                        enc,
                        reach,
                        start,
                        edge.caller,
                        v - av,
                        memo,
                        limit,
                    )?)
                    .min(2);
                if total >= 2 {
                    break;
                }
            }
            memo.insert((node, v), total);
            Ok(total)
        }

        let total = count(graph, enc, &reach, start, end, id, &mut memo, limit)?;
        match total {
            0 => Err(DecodeError::NoMatchingEdge {
                at: graph.method_of(end),
                id,
            }),
            1 => {
                // Reconstruct by following the unique contributing edge.
                let mut path = vec![end];
                let mut cur = end;
                let mut v = id;
                while cur != start {
                    let mut next: Option<(NodeIx, u128)> = None;
                    for &e in graph.in_edges(cur) {
                        if enc.excluded.contains(&e) {
                            continue;
                        }
                        let edge = graph.edge(e);
                        if !reach[edge.caller.index()] {
                            continue;
                        }
                        let av = enc.edge_av(graph, e);
                        if av > v {
                            continue;
                        }
                        let c = count(
                            graph,
                            enc,
                            &reach,
                            start,
                            edge.caller,
                            v - av,
                            &mut memo,
                            limit,
                        )?;
                        if c >= 1 {
                            next = Some((edge.caller, av));
                            break;
                        }
                    }
                    let (pred, av) =
                        next.expect("count==1 guarantees a contributing edge at every step");
                    v -= av;
                    cur = pred;
                    path.push(cur);
                }
                path.reverse();
                Ok(path)
            }
            _ => Err(DecodeError::Ambiguous {
                root: graph.method_of(start),
                at: graph.method_of(end),
            }),
        }
    }
}

/// Prepends `piece` to `result`.
fn splice_front(result: &mut Vec<NodeIx>, piece: &[NodeIx]) {
    let mut new = Vec::with_capacity(piece.len() + result.len());
    new.extend_from_slice(piece);
    new.append(result);
    *result = new;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Frame;
    use crate::plan::PlanConfig;
    use crate::state::DeltaState;
    use deltapath_ir::{MethodKind, Program, ProgramBuilder, SiteId};

    /// A three-level program: main -> {mid1, mid2} -> leaf (4 contexts at
    /// leaf).
    fn diamondish() -> (Program, Vec<SiteId>) {
        let mut b = ProgramBuilder::new("d");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).finish();
        let mut sites = Vec::new();
        b.method(c, "mid1", MethodKind::Static)
            .body(|f| {
                sites.push(f.call(c, "leaf"));
                sites.push(f.call(c, "leaf"));
            })
            .finish();
        b.method(c, "mid2", MethodKind::Static)
            .body(|f| {
                sites.push(f.call(c, "leaf"));
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                sites.push(f.call(c, "mid1"));
                sites.push(f.call(c, "mid2"));
            })
            .finish();
        b.entry(main);
        (b.finish().unwrap(), sites)
    }

    fn method(p: &Program, name: &str) -> MethodId {
        p.declared_method(
            p.class_by_name("C").unwrap(),
            p.symbols().lookup(name).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn decodes_every_leaf_context_distinctly() {
        let (p, sites) = diamondish();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let decoder = plan.decoder();
        let (leaf, mid1, mid2, main) = (
            method(&p, "leaf"),
            method(&p, "mid1"),
            method(&p, "mid2"),
            p.entry(),
        );
        // (outer site, inner site, expected context)
        let cases = vec![
            (sites[3], sites[0], vec![main, mid1, leaf]),
            (sites[3], sites[1], vec![main, mid1, leaf]),
            (sites[4], sites[2], vec![main, mid2, leaf]),
        ];
        let mut ids = Vec::new();
        for (outer, inner, expected) in cases {
            let mid = if outer == sites[3] { mid1 } else { mid2 };
            let mut st = DeltaState::start(main);
            let t1 = st.on_call(&plan, outer);
            let o1 = st.on_entry(&plan, mid, Some(outer));
            let t2 = st.on_call(&plan, inner);
            let o2 = st.on_entry(&plan, leaf, Some(inner));
            let ctx = st.snapshot(leaf);
            ids.push(ctx.id);
            assert_eq!(decoder.decode(&ctx).unwrap(), expected);
            st.on_exit(o2);
            st.on_return(t2);
            st.on_exit(o1);
            st.on_return(t1);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3, "all three contexts must encode distinctly");
    }

    #[test]
    fn corrupt_id_is_rejected_not_misdecoded() {
        let (p, _) = diamondish();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let decoder = plan.decoder();
        let leaf = method(&p, "leaf");
        let ctx = EncodedContext {
            frames: vec![Frame {
                tag: FrameTag::Anchor,
                node: p.entry(),
                site: None,
                saved_id: 0,
            }],
            id: 10_000, // way outside every sub-range
            at: leaf,
        };
        assert!(matches!(
            decoder.decode(&ctx),
            Err(DecodeError::NoMatchingEdge { .. })
        ));
    }

    #[test]
    fn empty_stack_is_rejected() {
        let (p, _) = diamondish();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let ctx = EncodedContext {
            frames: vec![],
            id: 0,
            at: p.entry(),
        };
        assert_eq!(
            plan.decoder().decode(&ctx).unwrap_err(),
            DecodeError::EmptyStack
        );
    }

    #[test]
    fn unknown_method_is_rejected() {
        let (p, _) = diamondish();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let ctx = EncodedContext {
            frames: vec![Frame {
                tag: FrameTag::Anchor,
                node: p.entry(),
                site: None,
                saved_id: 0,
            }],
            id: 0,
            at: MethodId::from_index(999),
        };
        assert!(matches!(
            plan.decoder().decode(&ctx),
            Err(DecodeError::UnknownMethod(_))
        ));
    }

    #[test]
    fn bottom_frame_must_be_anchor() {
        let (p, sites) = diamondish();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let ctx = EncodedContext {
            frames: vec![Frame {
                tag: FrameTag::Ucp,
                node: p.entry(),
                site: Some(sites[0]),
                saved_id: 0,
            }],
            id: 0,
            at: p.entry(),
        };
        assert_eq!(
            plan.decoder().decode(&ctx).unwrap_err(),
            DecodeError::BadBottomFrame
        );
    }
}

#[cfg(test)]
mod search_tests {
    use super::*;
    use crate::context::Frame;
    use crate::plan::{EncodingPlan, PlanConfig};
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    /// A graph where a piece rooted at non-anchor `x` is genuinely
    /// ambiguous: `x` reaches `g` through two recursion-header anchors `a`
    /// and `b`, whose territories each assign addition value 0 to their
    /// edge into `g` — so two distinct paths sum to the same ID. (This is
    /// exactly why the plan anchors statically known UCP entry points; a
    /// hand-built frame at `x` exercises the honest-failure path.)
    fn ambiguous_program() -> Program {
        let mut bld = ProgramBuilder::new("amb");
        let c = bld.add_class("C", None);
        bld.method(c, "g", MethodKind::Static).finish();
        bld.method(c, "a", MethodKind::Static)
            .body(|f| {
                f.if_mod(
                    2,
                    1,
                    |f| {
                        f.call_arg(
                            deltapath_ir::ClassId::from_index(0),
                            "a",
                            deltapath_ir::ArgExpr::ParamPlus(1),
                        );
                    },
                    |_| {},
                );
                f.call(c, "g");
            })
            .finish();
        bld.method(c, "b", MethodKind::Static)
            .body(|f| {
                f.if_mod(
                    2,
                    1,
                    |f| {
                        f.call_arg(
                            deltapath_ir::ClassId::from_index(0),
                            "b",
                            deltapath_ir::ArgExpr::ParamPlus(1),
                        );
                    },
                    |_| {},
                );
                f.call(c, "g");
            })
            .finish();
        bld.method(c, "x", MethodKind::Static)
            .body(|f| {
                f.call(c, "a");
                f.call(c, "b");
            })
            .finish();
        let main = bld
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "x");
            })
            .finish();
        bld.entry(main);
        bld.finish().unwrap()
    }

    fn method(p: &Program, name: &str) -> MethodId {
        p.declared_method(
            p.class_by_name("C").unwrap(),
            p.symbols().lookup(name).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn ambiguous_search_piece_is_reported_not_guessed() {
        let p = ambiguous_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        // a and b are recursion headers, hence anchors; x and g are not.
        assert!(plan.entry(method(&p, "a")).unwrap().is_anchor);
        assert!(plan.entry(method(&p, "b")).unwrap().is_anchor);
        assert!(!plan.entry(method(&p, "x")).unwrap().is_anchor);

        // Hand-built context: a UCP piece rooted at x, captured at g with
        // id 0 — reachable both via a and via b with identical sums.
        let main_x_site = p
            .sites()
            .iter()
            .find(|s| s.caller() == p.entry())
            .unwrap()
            .id();
        let ctx = EncodedContext {
            frames: vec![
                Frame {
                    tag: FrameTag::Anchor,
                    node: p.entry(),
                    site: None,
                    saved_id: 0,
                },
                Frame {
                    tag: FrameTag::Ucp,
                    node: method(&p, "x"),
                    site: Some(main_x_site),
                    saved_id: 0,
                },
            ],
            id: 0,
            at: method(&p, "g"),
        };
        let err = plan.decoder().decode(&ctx).unwrap_err();
        assert!(
            matches!(err, DecodeError::Ambiguous { .. }),
            "expected honest ambiguity report, got {err:?}"
        );
    }

    #[test]
    fn unambiguous_search_piece_decodes() {
        let p = ambiguous_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        // A piece rooted at x captured at a (one path only: x -> a).
        let main_x_site = p
            .sites()
            .iter()
            .find(|s| s.caller() == p.entry())
            .unwrap()
            .id();
        let av_xa = plan
            .site(
                p.sites()
                    .iter()
                    .find(|s| {
                        s.caller() == method(&p, "x") && p.symbols().resolve(s.method()) == "a"
                    })
                    .unwrap()
                    .id(),
            )
            .unwrap()
            .av;
        let ctx = EncodedContext {
            frames: vec![
                Frame {
                    tag: FrameTag::Anchor,
                    node: p.entry(),
                    site: None,
                    saved_id: 0,
                },
                Frame {
                    tag: FrameTag::Ucp,
                    node: method(&p, "x"),
                    site: Some(main_x_site),
                    saved_id: 0,
                },
            ],
            id: av_xa,
            at: method(&p, "a"),
        };
        let decoded = plan.decoder().decode(&ctx).unwrap();
        assert_eq!(decoded, vec![p.entry(), method(&p, "x"), method(&p, "a")]);
    }
}
