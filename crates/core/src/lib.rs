//! # deltapath-core
//!
//! The DeltaPath calling-context encoding algorithms (CGO 2014).
//!
//! A *calling context* is the sequence of active invocations leading to a
//! program point. DeltaPath represents it as a small integer ID maintained
//! with one addition per call and one subtraction per return, plus a shallow
//! stack — and, unlike probabilistic approaches, every encoding decodes back
//! to the exact context.
//!
//! The crate provides, bottom-up:
//!
//! * [`PcceEncoding`] — the PCCE baseline (per-edge addition values;
//!   Section 2 of the paper, Figure 1);
//! * [`Algo1Encoding`] — Algorithm 1: a *single* addition value per call
//!   site under virtual dispatch, via candidate addition values and inflated
//!   calling-context counts (Section 3.1, Figures 2–4);
//! * [`Encoding`] — Algorithm 2: anchor nodes dividing long contexts into
//!   integer-sized pieces, per-anchor territories, and the
//!   overflow-triggered restart loop (Section 3.2, Figure 5);
//! * [`SidTable`] — call-path-tracking set identifiers that detect
//!   *hazardous unexpected call paths* from dynamically loaded or excluded
//!   code (Section 4.1, Figure 6);
//! * [`EncodingPlan`] — the complete instrumentation image: what to do at
//!   every call site and method entry/exit (consumed by
//!   `deltapath-runtime`);
//! * [`CompiledPlan`] — the plan lowered into dense dispatch tables for
//!   the table-driven encoder hot path (one array load per hook, zero
//!   hashing), including the batched hook kernel ([`HookWord`],
//!   [`BatchState`], [`CompiledPlan::apply_batch`]) that applies packed
//!   hook words with branchless mask arithmetic;
//! * [`DeltaState`] — the per-thread runtime state machine (ID, stack,
//!   pending expectation) that the instrumentation hooks drive;
//! * [`Decoder`] — precise decoding of encoded contexts, piece by piece;
//! * [`verify`] — exhaustive context enumeration and uniqueness checking
//!   used by the test suite;
//! * [`prune_to_targets`] and [`RelativeLog`] — the pruned- and
//!   relative-encoding extensions (Section 8).
//!
//! # Quickstart
//!
//! ```
//! use deltapath_ir::{MethodKind, ProgramBuilder};
//! use deltapath_core::{EncodingPlan, PlanConfig};
//!
//! // A tiny program: main calls helper twice from two different sites.
//! let mut b = ProgramBuilder::new("quick");
//! let c = b.add_class("Main", None);
//! b.method(c, "helper", MethodKind::Static).finish();
//! let main = b
//!     .method(c, "main", MethodKind::Static)
//!     .body(|f| {
//!         f.call(c, "helper");
//!         f.call(c, "helper");
//!     })
//!     .finish();
//! b.entry(main);
//! let program = b.finish()?;
//!
//! let plan = EncodingPlan::analyze(&program, &PlanConfig::default())?;
//! // The two call sites receive distinct addition values, so the two
//! // contexts `main->helper` are distinguishable.
//! assert_eq!(plan.instrumented_site_count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo1;
mod algo2;
mod context;
mod decode;
mod error;
mod pcce;
mod plan;
mod plan_compiled;
mod plan_io;
mod pruned;
mod relative;
mod sid;
mod state;
pub mod verify;
mod width;

pub use algo1::Algo1Encoding;
pub use algo2::{Algo2Config, Encoding};
pub use context::{EncodedContext, Frame, FrameTag};
pub use decode::{DecodeOptions, Decoder};
pub use error::{DecodeError, EncodeError};
pub use pcce::PcceEncoding;
pub use plan::{EncodingPlan, EntryInstr, PlanConfig, SiteInstr, TableDigests};
pub use plan_compiled::{BatchCounts, BatchState, CompiledPlan, EntryWord, HookWord, SiteWord};
pub use plan_io::{
    parse_plan, render_plan, render_plan_string, ImportedPlan, PlanParseError, PLAN_SCHEMA,
};
pub use pruned::prune_to_targets;
pub use relative::{RelativeEntry, RelativeLog};
pub use sid::{Sid, SidTable};
pub use state::{CallToken, DeltaState, EntryOutcome, ResolvedEntry, ResolvedSite};
pub use width::EncodingWidth;
