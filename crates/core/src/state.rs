//! The per-thread runtime encoding state machine.
//!
//! A real deployment injects a handful of instructions at every call site
//! and method entry/exit; this module is the exact state machine those
//! instructions implement, factored out so the interpreter (and the
//! verification harness) can drive it through explicit hooks:
//!
//! * [`DeltaState::on_call`] — caller side, before the call: `ID += av`,
//!   save and replace the pending expectation (call-path tracking);
//! * [`DeltaState::on_entry`] — callee side: SID check (hazardous-UCP
//!   detection), recursion-back-edge push, anchor push;
//! * [`DeltaState::on_exit`] — callee side: pop whatever the entry pushed;
//! * [`DeltaState::on_return`] — caller side, after the call returns:
//!   `ID -= av`, restore the pending expectation.
//!
//! The pending expectation is saved *around* each call (the token returned
//! by `on_call` is restored by `on_return`), which models keeping it in the
//! caller's native frame. This is what keeps the expectation exact even when
//! excluded or dynamically loaded code interleaves with encoded code.

use deltapath_ir::{MethodId, SiteId};

use crate::context::{EncodedContext, Frame, FrameTag};
use crate::plan::{EncodingPlan, EntryInstr, SiteInstr};
use crate::sid::Sid;

/// A [`SiteInstr`] resolved against the plan configuration: everything the
/// caller-side hooks need, with the config conditionals (`cpt && tracked`)
/// already folded in so the hot path branches on plain booleans. This is
/// the unpacked form of a [`CompiledPlan`](crate::CompiledPlan) site word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedSite {
    /// The site's addition value.
    pub av: u64,
    /// Whether the ID arithmetic is emitted.
    pub encoded: bool,
    /// The SID every statically known target shares.
    pub expected_sid: Sid,
    /// Whether the site saves the pending expectation — `tracked` fused
    /// with the plan-wide call-path-tracking switch.
    pub save_pending: bool,
}

impl ResolvedSite {
    /// Resolves a site instruction under a call-path-tracking mode.
    pub fn of(instr: &SiteInstr, cpt: bool) -> Self {
        Self {
            av: instr.av,
            encoded: instr.encoded,
            expected_sid: instr.expected_sid,
            save_pending: cpt && instr.tracked,
        }
    }
}

/// An [`EntryInstr`] resolved against the plan configuration and the
/// dispatching call site: the config conditionals (`cpt && check_sid`) and
/// the back-edge classification of the `(site, method)` pair are folded in
/// before the state machine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedEntry {
    /// The method's SID.
    pub sid: Sid,
    /// Whether the entry pushes an anchor frame.
    pub is_anchor: bool,
    /// Whether the entry performs the SID check — `check_sid` fused with
    /// the plan-wide call-path-tracking switch.
    pub do_check: bool,
    /// Whether the dispatching call took a recursion back edge.
    pub back_edge: bool,
}

impl ResolvedEntry {
    /// Resolves an entry instruction under a call-path-tracking mode and a
    /// back-edge classification of the incoming call.
    pub fn of(instr: &EntryInstr, cpt: bool, back_edge: bool) -> Self {
        Self {
            sid: instr.sid,
            is_anchor: instr.is_anchor,
            do_check: cpt && instr.check_sid,
            back_edge,
        }
    }
}

/// The caller-saved half of a call: returned by [`DeltaState::on_call`],
/// must be passed to [`DeltaState::on_return`] when the call returns.
///
/// The token carries everything the return hook needs (the amount to
/// subtract and whether/what to restore), so `on_return` never consults
/// the plan — each call resolves its site instruction exactly once.
#[derive(Clone, Copy, Debug)]
pub struct CallToken {
    added: u64,
    encoded: bool,
    restore_pending: bool,
    saved_pending: Option<Pending>,
}

impl CallToken {
    /// The token of a call through an uninstrumented site: subtracts
    /// nothing, restores nothing.
    pub fn inert() -> Self {
        Self {
            added: 0,
            encoded: false,
            restore_pending: false,
            saved_pending: None,
        }
    }

    /// Whether the site's ID arithmetic was emitted (the matching return
    /// performs a subtraction).
    pub fn encoded(&self) -> bool {
        self.encoded
    }

    /// The amount `on_call` added (zero for non-encoded sites).
    pub fn added(&self) -> u64 {
        self.added
    }
}

/// The expectation saved before a call for call-path tracking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    site: SiteId,
    expected: Sid,
    id_at_call: u64,
}

/// What a method entry did to the encoding stack; pass it back to
/// [`DeltaState::on_exit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryOutcome {
    /// Nothing pushed.
    Plain,
    /// Pushed an anchor frame.
    PushedAnchor,
    /// Pushed a recursion frame (the call took a back edge).
    PushedRecursion,
    /// Pushed a hazardous-unexpected-call-path frame.
    PushedUcp,
}

impl EntryOutcome {
    /// Whether the entry pushed a frame that the exit must pop.
    pub fn pushed(self) -> bool {
        self != EntryOutcome::Plain
    }
}

/// Per-thread DeltaPath encoding state: the current ID, the encoding stack,
/// and the pending call-path-tracking expectation.
///
/// # Example
///
/// Driving the state machine by hand along `main --site--> helper`:
///
/// ```
/// use deltapath_ir::{MethodKind, ProgramBuilder};
/// use deltapath_core::{DeltaState, EncodingPlan, PlanConfig};
///
/// let mut b = ProgramBuilder::new("s");
/// let c = b.add_class("Main", None);
/// b.method(c, "helper", MethodKind::Static).finish();
/// let mut site = None;
/// let main = b
///     .method(c, "main", MethodKind::Static)
///     .body(|f| {
///         site = Some(f.call(c, "helper"));
///     })
///     .finish();
/// b.entry(main);
/// let program = b.finish()?;
/// let plan = EncodingPlan::analyze(&program, &PlanConfig::default())?;
/// let helper = program.class_by_name("Main")
///     .and_then(|cls| program.declared_method(cls, program.symbols().lookup("helper").unwrap()))
///     .unwrap();
///
/// let mut state = DeltaState::start(main);
/// let token = state.on_call(&plan, site.unwrap());
/// let outcome = state.on_entry(&plan, helper, Some(site.unwrap()));
/// let ctx = state.snapshot(helper);
/// assert_eq!(plan.decoder().decode(&ctx)?, vec![main, helper]);
/// state.on_exit(outcome);
/// state.on_return(token);
/// assert_eq!(state.id(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct DeltaState {
    id: u64,
    stack: Vec<Frame>,
    pending: Option<Pending>,
}

impl DeltaState {
    /// Creates the state for a thread entering the program at `entry`: the
    /// stack holds the bootstrap anchor frame and the ID is zero.
    pub fn start(entry: MethodId) -> Self {
        Self {
            id: 0,
            stack: vec![Frame {
                tag: FrameTag::Anchor,
                node: entry,
                site: None,
                saved_id: 0,
            }],
            pending: None,
        }
    }

    /// The current encoding ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Caller-side hook, before the call at `site` is dispatched; resolves
    /// the site against `plan` and delegates to
    /// [`DeltaState::on_call_resolved`]. This is the map-probing reference
    /// path; table-driven encoders resolve through a
    /// [`CompiledPlan`](crate::CompiledPlan) instead.
    pub fn on_call(&mut self, plan: &EncodingPlan, site: SiteId) -> CallToken {
        match plan.site(site) {
            Some(instr) => self.on_call_resolved(site, ResolvedSite::of(instr, plan.config().cpt)),
            None => CallToken::inert(),
        }
    }

    /// Caller-side hook with the site instruction already resolved.
    ///
    /// Adds the site's addition value (if the site is encoded) and installs
    /// the pending expectation (if the resolved instruction saves it). The
    /// returned token must be handed to [`DeltaState::on_return`]
    /// afterwards.
    pub fn on_call_resolved(&mut self, site: SiteId, r: ResolvedSite) -> CallToken {
        let added = if r.encoded { r.av } else { 0 };
        // Algorithm 2 guarantees the sum stays below the width capacity on
        // every *expected* path (no runtime overflow checks needed — paper
        // Section 3.2). On corrupted paths (call-path tracking disabled in
        // the presence of dynamic loading) the value is garbage either way;
        // wrap rather than abort the host, exactly like the injected
        // arithmetic would.
        debug_assert!(
            self.id.checked_add(added).is_some(),
            "encoding ID overflow outside a corrupted-path scenario"
        );
        self.id = self.id.wrapping_add(added);
        let saved_pending = if r.save_pending {
            let saved = self.pending.take();
            self.pending = Some(Pending {
                site,
                expected: r.expected_sid,
                id_at_call: self.id,
            });
            saved
        } else {
            None
        };
        CallToken {
            added,
            encoded: r.encoded,
            restore_pending: r.save_pending,
            saved_pending,
        }
    }

    /// Caller-side hook, after the call returned. The token carries the
    /// resolved instruction, so no plan lookup happens here.
    pub fn on_return(&mut self, token: CallToken) {
        debug_assert!(
            self.id >= token.added,
            "encoding ID underflow outside a corrupted-path scenario"
        );
        self.id = self.id.wrapping_sub(token.added);
        if token.restore_pending {
            self.pending = token.saved_pending;
        }
    }

    /// Callee-side hook at the entry of `method`.
    ///
    /// `via_site` is the call site that dispatched here when the caller was
    /// instrumented, `None` when control arrived from uninstrumented code
    /// (the real instrumentation has no caller argument; the check below
    /// reads the thread-local expectation exactly as the paper describes).
    ///
    /// Returns what was pushed; pass it to [`DeltaState::on_exit`].
    pub fn on_entry(
        &mut self,
        plan: &EncodingPlan,
        method: MethodId,
        via_site: Option<SiteId>,
    ) -> EntryOutcome {
        let Some(entry) = plan.entry(method) else {
            return EntryOutcome::Plain; // Uninstrumented method: no hooks.
        };
        let back_edge = via_site.is_some_and(|site| plan.is_back_edge_call(site, method));
        self.on_entry_resolved(
            method,
            via_site,
            ResolvedEntry::of(entry, plan.config().cpt, back_edge),
        )
    }

    /// Callee-side hook with the entry instruction already resolved
    /// (including the back-edge classification of `via_site`).
    ///
    /// Returns what was pushed; pass it to [`DeltaState::on_exit`].
    pub fn on_entry_resolved(
        &mut self,
        method: MethodId,
        via_site: Option<SiteId>,
        r: ResolvedEntry,
    ) -> EntryOutcome {
        if r.do_check {
            let expected = self.pending.map(|p| p.expected);
            if expected != Some(r.sid) {
                // Hazardous unexpected call path (Section 4.1): record the
                // boundary and restart the encoding at this method.
                let (site, saved_id) = match self.pending {
                    Some(p) => (Some(p.site), p.id_at_call),
                    None => (None, self.id),
                };
                self.stack.push(Frame {
                    tag: FrameTag::Ucp,
                    node: method,
                    site,
                    saved_id,
                });
                self.id = 0;
                return EntryOutcome::PushedUcp;
            }
        }

        if r.back_edge {
            debug_assert!(
                via_site.is_some(),
                "a back-edge entry always has a dispatching site"
            );
            self.stack.push(Frame {
                tag: FrameTag::Recursion,
                node: method,
                site: via_site,
                saved_id: self.id,
            });
            self.id = 0;
            return EntryOutcome::PushedRecursion;
        }

        if r.is_anchor {
            self.stack.push(Frame {
                tag: FrameTag::Anchor,
                node: method,
                site: via_site,
                saved_id: self.id,
            });
            self.id = 0;
            return EntryOutcome::PushedAnchor;
        }
        EntryOutcome::Plain
    }

    /// Callee-side hook at the exit of the method whose entry returned
    /// `outcome`: pops the frame pushed at entry, restoring the saved ID.
    ///
    /// # Panics
    ///
    /// Panics if the stack underflows (entry/exit hooks not balanced — a
    /// harness bug, not a recoverable condition).
    pub fn on_exit(&mut self, outcome: EntryOutcome) {
        if outcome.pushed() {
            let frame = self
                .stack
                .pop()
                .expect("encoding stack underflow: unbalanced entry/exit hooks");
            self.id = frame.saved_id;
        }
    }

    /// Captures the current calling context as an encoded value.
    pub fn snapshot(&self, at: MethodId) -> EncodedContext {
        EncodedContext {
            frames: self.stack.clone(),
            id: self.id,
            at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    /// main calls leaf from two sites; leaf contexts must differ by ID.
    fn two_site_program() -> (Program, Vec<SiteId>) {
        let mut b = ProgramBuilder::new("two");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).finish();
        let mut sites = Vec::new();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                sites.push(f.call(c, "leaf"));
                sites.push(f.call(c, "leaf"));
            })
            .finish();
        b.entry(main);
        (b.finish().unwrap(), sites)
    }

    fn method(p: &Program, class: &str, name: &str) -> MethodId {
        p.declared_method(
            p.class_by_name(class).unwrap(),
            p.symbols().lookup(name).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn two_sites_give_distinct_ids() {
        let (p, sites) = two_site_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let leaf = method(&p, "C", "leaf");
        let main = p.entry();

        let mut ids = Vec::new();
        for &site in &sites {
            let mut st = DeltaState::start(main);
            let token = st.on_call(&plan, site);
            let outcome = st.on_entry(&plan, leaf, Some(site));
            ids.push(st.snapshot(leaf).id);
            st.on_exit(outcome);
            st.on_return(token);
            assert_eq!(st.id(), 0);
            assert_eq!(st.depth(), 1);
        }
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn call_return_is_an_exact_inverse() {
        let (p, sites) = two_site_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut st = DeltaState::start(p.entry());
        let before = st.clone();
        let token = st.on_call(&plan, sites[1]);
        st.on_return(token);
        assert_eq!(st.id(), before.id());
        assert_eq!(st.depth(), before.depth());
    }

    #[test]
    fn bootstrap_frame_is_anchor_of_entry() {
        let (p, _) = two_site_program();
        let st = DeltaState::start(p.entry());
        let ctx = st.snapshot(p.entry());
        assert_eq!(ctx.frames.len(), 1);
        assert_eq!(ctx.frames[0].tag, FrameTag::Anchor);
        assert_eq!(ctx.frames[0].node, p.entry());
        assert_eq!(ctx.id, 0);
    }

    #[test]
    fn uninstrumented_site_is_a_no_op() {
        let (p, _) = two_site_program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut st = DeltaState::start(p.entry());
        // A site id that does not exist in the plan.
        let bogus = SiteId::from_index(999);
        let token = st.on_call(&plan, bogus);
        assert_eq!(st.id(), 0);
        st.on_return(token);
        assert_eq!(st.id(), 0);
    }
}
