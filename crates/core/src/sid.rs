//! Call-path-tracking set identifiers (paper Section 4.1).
//!
//! Inspired by control-flow integrity, the call-path tracking technique
//! assigns every method a *set identifier* (SID) such that all possible
//! dispatch targets of any one call site share a SID. At runtime, a caller
//! saves the expected SID before a call; each statically known method
//! compares it against its own SID at entry. A mismatch reveals a
//! *hazardous unexpected call path* — control arrived through dynamically
//! loaded (or scope-excluded) code in a way that would corrupt the encoding.
//! Matching SIDs mean the path is *benign*: because all alternatives of a
//! site share one SID (and one addition value), the encoding remains
//! decodable with the dynamic detour elided.
//!
//! Statically the SIDs are the connected components of the "co-dispatched"
//! relation: start with every method in its own set and union the target
//! sets of every call site.

use std::fmt;

use deltapath_callgraph::CallGraph;
use deltapath_ir::MethodId;

/// A set identifier shared by all dispatch targets of any call site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sid(u32);

impl Sid {
    /// The reserved SID carried by call sites none of whose targets are in
    /// the encoded graph: it matches no method's SID, so the next encoded
    /// entry always detects a hazardous unexpected call path.
    pub const UNKNOWN: Sid = Sid(u32::MAX);

    /// The raw value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Reconstructs a SID from its raw value — the inverse of
    /// [`Sid::as_u32`], used when unpacking SIDs stored in compiled
    /// dispatch-table words.
    pub const fn from_raw(raw: u32) -> Self {
        Sid(raw)
    }
}

impl fmt::Debug for Sid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Sid::UNKNOWN {
            write!(f, "sid#?")
        } else {
            write!(f, "sid#{}", self.0)
        }
    }
}

impl fmt::Display for Sid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Set identifiers for every method in an encoded call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SidTable {
    /// SID per node index of the graph the table was computed for.
    sid_of_node: Vec<Sid>,
    /// Number of distinct sets.
    set_count: usize,
    /// Methods indexed the same way as the graph nodes (for method lookup).
    method_sids: std::collections::HashMap<MethodId, Sid>,
}

impl SidTable {
    /// Computes SIDs for `graph`: unions the dispatch-target set of every
    /// call site (including recursion back edges — a back-edge target is a
    /// legitimate dispatch alternative of its site).
    pub fn compute(graph: &CallGraph) -> Self {
        let n = graph.node_count();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }

        for site in graph.instrumented_sites() {
            let edges = graph.site_edges(site);
            let mut first: Option<usize> = None;
            for &e in edges {
                let callee = graph.edge(e).callee.index();
                match first {
                    None => first = Some(find(&mut parent, callee)),
                    Some(f) => {
                        let r = find(&mut parent, callee);
                        let f2 = find(&mut parent, f);
                        if r != f2 {
                            parent[r] = f2;
                        }
                        first = Some(f2);
                    }
                }
            }
        }

        // Compress roots into dense SIDs.
        let mut sid_of_root: std::collections::HashMap<usize, Sid> =
            std::collections::HashMap::new();
        let mut sid_of_node = Vec::with_capacity(n);
        for i in 0..n {
            let root = find(&mut parent, i);
            let next = Sid(u32::try_from(sid_of_root.len()).expect("too many SIDs"));
            let sid = *sid_of_root.entry(root).or_insert(next);
            sid_of_node.push(sid);
        }
        let method_sids = graph
            .nodes()
            .map(|node| (graph.method_of(node), sid_of_node[node.index()]))
            .collect();
        Self {
            set_count: sid_of_root.len(),
            sid_of_node,
            method_sids,
        }
    }

    /// Reassembles a table from a parsed per-node SID column — the inverse
    /// of rendering `sid node=N ...` lines. `set_count` and the per-method
    /// lookup are re-derived from the column and the graph; the reserved
    /// UNKNOWN SID does not count as a set.
    pub(crate) fn from_parts(sid_of_node: Vec<Sid>, graph: &CallGraph) -> Self {
        let set_count = sid_of_node
            .iter()
            .filter(|&&s| s != Sid::UNKNOWN)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let method_sids = graph
            .nodes()
            .filter(|node| node.index() < sid_of_node.len())
            .map(|node| (graph.method_of(node), sid_of_node[node.index()]))
            .collect();
        Self {
            sid_of_node,
            set_count,
            method_sids,
        }
    }

    /// The SID of a graph node.
    pub fn sid_of_node_index(&self, index: usize) -> Sid {
        self.sid_of_node[index]
    }

    /// The SID of a method, if it is in the encoded graph.
    pub fn sid_of_method(&self, method: MethodId) -> Option<Sid> {
        self.method_sids.get(&method).copied()
    }

    /// Number of distinct sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Rewrites every occurrence of `from` to `to`, merging the two sets.
    ///
    /// This deliberately coarsens the partition — methods that must be
    /// distinguished at a check site may end up sharing a SID — so it is a
    /// fault-injection hook for the static auditor's `DP020 SidCollision`
    /// check, not a production operation.
    pub fn alias_sid(&mut self, from: Sid, to: Sid) {
        for sid in &mut self.sid_of_node {
            if *sid == from {
                *sid = to;
            }
        }
        for sid in self.method_sids.values_mut() {
            if *sid == from {
                *sid = to;
            }
        }
        let distinct: std::collections::HashSet<Sid> = self.sid_of_node.iter().copied().collect();
        self.set_count = distinct.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_ir::SiteId;

    fn m(i: usize) -> MethodId {
        MethodId::from_index(i)
    }
    fn s(i: usize) -> SiteId {
        SiteId::from_index(i)
    }

    #[test]
    fn co_dispatched_targets_share_a_sid() {
        // Site 0 dispatches to {b, c}; site 1 dispatches to {c, d};
        // transitively b, c, d share a SID. e stands alone.
        let mut g = CallGraph::empty();
        let a = g.add_node(m(0));
        let b = g.add_node(m(1));
        let c = g.add_node(m(2));
        let d = g.add_node(m(3));
        let e = g.add_node(m(4));
        g.set_entry(a);
        g.add_edge(a, b, s(0));
        g.add_edge(a, c, s(0));
        g.add_edge(b, c, s(1));
        g.add_edge(b, d, s(1));
        g.add_edge(d, e, s(2));
        let sids = SidTable::compute(&g);
        let sid = |n: deltapath_callgraph::NodeIx| sids.sid_of_node_index(n.index());
        assert_eq!(sid(b), sid(c));
        assert_eq!(sid(c), sid(d));
        assert_ne!(sid(b), sid(e));
        assert_ne!(sid(a), sid(b)); // a is never a dispatch target with them
        assert_eq!(sids.set_count(), 3); // {a}, {b,c,d}, {e}
    }

    #[test]
    fn singleton_sites_keep_methods_separate() {
        let mut g = CallGraph::empty();
        let a = g.add_node(m(0));
        let b = g.add_node(m(1));
        let c = g.add_node(m(2));
        g.set_entry(a);
        g.add_edge(a, b, s(0));
        g.add_edge(a, c, s(1));
        let sids = SidTable::compute(&g);
        assert_ne!(
            sids.sid_of_node_index(b.index()),
            sids.sid_of_node_index(c.index())
        );
        assert_eq!(sids.set_count(), 3);
    }

    #[test]
    fn method_lookup_matches_node_lookup() {
        let mut g = CallGraph::empty();
        let a = g.add_node(m(7));
        let b = g.add_node(m(9));
        g.set_entry(a);
        g.add_edge(a, b, s(0));
        let sids = SidTable::compute(&g);
        assert_eq!(
            sids.sid_of_method(m(9)),
            Some(sids.sid_of_node_index(b.index()))
        );
        assert_eq!(sids.sid_of_method(m(999)), None);
    }

    #[test]
    fn unknown_sid_matches_nothing() {
        let mut g = CallGraph::empty();
        let a = g.add_node(m(0));
        g.set_entry(a);
        let sids = SidTable::compute(&g);
        assert_ne!(sids.sid_of_node_index(a.index()), Sid::UNKNOWN);
        assert_eq!(format!("{}", Sid::UNKNOWN), "sid#?");
    }
}
