//! Algorithm 2: encoding with anchor nodes (paper Section 3.2).
//!
//! The number of calling contexts grows exponentially with call-graph size,
//! so addition values computed by Algorithm 1 can overflow any fixed-width
//! integer. Algorithm 2 divides long calling contexts into *pieces* by
//! choosing *anchor* nodes: at runtime, invoking an anchor pushes the
//! current ID and resets it to zero, so each piece is encoded relative to
//! the anchor it starts at, and the previously global encoding-space
//! pressure is distributed along the anchors.
//!
//! Statically, the analysis walks each anchor's *territory* (a bounded DFS
//! that retreats at other anchors) and extends the candidate addition values
//! and inflated context counts to two dimensions: `CAV[n][r]` / `ICC[n][r]`
//! for anchor `r`. Whenever a value would overflow the configured
//! [`EncodingWidth`], the offending caller is promoted to an anchor and the
//! analysis restarts — the paper's `goto again` loop. Recursion headers and
//! extra call-graph roots are forced anchors from the start (see DESIGN.md:
//! recursion is handled by anchoring the headers of back edges).

use std::collections::{HashMap, HashSet};

use deltapath_callgraph::{topological_order_masked, CallGraph, EdgeIx, NodeIx};
use deltapath_ir::SiteId;
use deltapath_telemetry::{names, NullTelemetry, ScopedSpan, Telemetry};

use crate::error::EncodeError;
use crate::width::EncodingWidth;

/// Configuration for [`Encoding::analyze`].
#[derive(Clone, Debug)]
pub struct Algo2Config {
    /// The integer width the encoding must fit.
    pub width: EncodingWidth,
    /// Nodes that must be anchors regardless of overflow (recursion headers;
    /// the graph roots are always included automatically).
    pub forced_anchors: Vec<NodeIx>,
    /// Overflow-handling strategy. `false` (default) restarts after the
    /// *first* overflow, adding one anchor — the paper's `goto again` loop,
    /// whose anchor counts we report. `true` finishes the pass, collects
    /// *every* overflowing caller, and adds them together before
    /// restarting: the resulting anchor set can be slightly larger, but the
    /// number of restart rounds drops from O(anchors) to a handful — used
    /// for wide sweeps at narrow widths where hundreds of anchors appear.
    pub batch_overflow: bool,
    /// Worker threads for territory identification. Each anchor's territory
    /// walk is independent of every other's, so the walks parallelize
    /// cleanly; `0` or `1` selects the sequential reference implementation
    /// (the default). The parallel path produces output identical to the
    /// reference — per-node and per-edge anchor lists stay in ascending
    /// anchor order — so the resulting [`Encoding`] is the same bit for
    /// bit (pinned by `tests/sharded_collector.rs`).
    pub territory_workers: usize,
    /// Optional scalability cap on territory overlap. When set, a linear
    /// pre-pass counts the anchor-free paths reaching each node in
    /// topological order and promotes a node to an anchor whenever the
    /// count would exceed the budget. This bounds every node's territory
    /// membership (and hence the whole analysis) to `O(budget · |E|)` at
    /// the cost of extra anchors — the same time/space trade the overflow
    /// loop makes, applied up front. `None` (the default) preserves the
    /// paper's anchor placement exactly; million-node planning wants a
    /// small budget (8–64).
    pub territory_budget: Option<u64>,
}

impl Algo2Config {
    /// A configuration with the given width and no forced anchors.
    pub fn new(width: EncodingWidth) -> Self {
        Self {
            width,
            forced_anchors: Vec::new(),
            batch_overflow: false,
            territory_workers: 1,
            territory_budget: None,
        }
    }

    /// Adds forced anchors (e.g. recursion headers).
    pub fn with_forced_anchors(mut self, anchors: Vec<NodeIx>) -> Self {
        self.forced_anchors = anchors;
        self
    }

    /// Enables batched overflow handling (see [`Algo2Config::batch_overflow`]).
    pub fn with_batch_overflow(mut self) -> Self {
        self.batch_overflow = true;
        self
    }

    /// Sets the territory-walk worker count (see
    /// [`Algo2Config::territory_workers`]).
    pub fn with_territory_workers(mut self, workers: usize) -> Self {
        self.territory_workers = workers;
        self
    }

    /// Caps territory overlap (see [`Algo2Config::territory_budget`]).
    pub fn with_territory_budget(mut self, budget: u64) -> Self {
        self.territory_budget = Some(budget.max(1));
        self
    }
}

/// The result of Algorithm 2: per-site addition values, per-anchor inflated
/// context counts, and the territory tables needed for decoding.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The width the encoding satisfies.
    pub width: EncodingWidth,
    /// All anchors, sorted (roots, forced anchors, overflow-chosen anchors).
    pub anchors: Vec<NodeIx>,
    /// Anchor membership per node.
    pub is_anchor: Vec<bool>,
    /// Anchors chosen by the overflow-restart loop (excludes roots/forced).
    pub overflow_anchors: Vec<NodeIx>,
    /// Anchors pre-placed by the territory-budget pass (see
    /// [`Algo2Config::territory_budget`]); empty without a budget.
    pub budget_anchors: Vec<NodeIx>,
    /// The single addition value of each call site.
    pub site_av: HashMap<SiteId, u128>,
    /// `icc[n][r]`: inflated calling-context count of node `n` relative to
    /// anchor `r`; pieces starting at `r` and ending at `n` are encoded in
    /// `[0, icc[n][r])`.
    pub icc: Vec<HashMap<NodeIx, u128>>,
    /// Anchors whose territory contains each node.
    pub nanchors: Vec<Vec<NodeIx>>,
    /// Anchors whose territory contains each edge.
    pub eanchors: Vec<Vec<NodeIx>>,
    /// Excluded (back) edges, invisible to the encoding.
    pub excluded: HashSet<EdgeIx>,
    /// The largest ICC value: the per-piece encoding space actually needed.
    pub max_icc: u128,
    /// Number of analysis restarts performed.
    pub restarts: usize,
}

impl Encoding {
    /// Runs Algorithm 2 over `graph`, ignoring `excluded` (back) edges.
    ///
    /// # Errors
    ///
    /// * [`EncodeError::NoRoots`] — the graph has no roots;
    /// * [`EncodeError::StillCyclic`] — cycles remain after exclusion;
    /// * [`EncodeError::WidthTooSmall`] — a single node's fan-in overflows
    ///   the width even with every caller anchored.
    pub fn analyze(
        graph: &CallGraph,
        excluded: &HashSet<EdgeIx>,
        config: &Algo2Config,
    ) -> Result<Self, EncodeError> {
        Self::analyze_with(graph, excluded, config, &NullTelemetry)
    }

    /// As [`Encoding::analyze`], emitting timed spans into `sink`:
    ///
    /// * `algo2.territories` — one span per restart-loop iteration, with the
    ///   iteration number and current anchor count; with territory workers,
    ///   each worker additionally emits an `algo2.territory_walk` span from
    ///   its own thread and the in-order recombination an
    ///   `algo2.territory_merge` span;
    /// * `algo2.interval_walk` — the symbolic CAV/ICC propagation over the
    ///   topological order, one span per iteration;
    /// * `algo2.restart` — a point event each time overflow promotes a new
    ///   anchor (single mode carries the promoted node, batch mode the
    ///   number of anchors added);
    /// * `algo2.analyze` — the whole analysis, with node/edge/anchor/
    ///   restart counts and the final `max_icc` (saturated to `u64`).
    ///
    /// Spans are opened and closed pairwise (`span_open`/`span_close`), so
    /// hierarchical sinks see the sub-phases nested under `algo2.analyze`.
    ///
    /// Against a disabled sink this is exactly [`Encoding::analyze`]: no
    /// clocks are read and no counts are computed.
    ///
    /// # Errors
    ///
    /// As for [`Encoding::analyze`].
    pub fn analyze_with(
        graph: &CallGraph,
        excluded: &HashSet<EdgeIx>,
        config: &Algo2Config,
        sink: &dyn Telemetry,
    ) -> Result<Self, EncodeError> {
        let total = ScopedSpan::enter(sink, names::ALGO2_ANALYZE);
        if graph.node_count() == 0 || graph.roots().is_empty() {
            return Err(EncodeError::NoRoots);
        }
        // One dense mask conversion up front; every pass of the analysis
        // then checks exclusion with an array load instead of a hash probe.
        let mask = deltapath_callgraph::excluded_mask(graph, excluded);
        let order = topological_order_masked(graph, &mask).map_err(|_| EncodeError::StillCyclic)?;
        let n = graph.node_count();
        let cap = config.width.capacity();

        let mut is_anchor = vec![false; n];
        for &r in graph.roots() {
            is_anchor[r.index()] = true;
        }
        for &a in &config.forced_anchors {
            is_anchor[a.index()] = true;
        }
        // Territory-budget pre-pass: one linear sweep promoting a node to an
        // anchor wherever the anchor-free path count would exceed the
        // budget. Every later pass is then bounded by `budget` work per
        // node/edge instead of the full territory overlap.
        let mut budget_anchors: Vec<NodeIx> = Vec::new();
        if let Some(budget) = config.territory_budget {
            let budget = budget.max(1);
            let mut paths: Vec<u64> = vec![0; n];
            for &node in &order {
                let i = node.index();
                let mut c: u64 = 0;
                for &e in graph.in_edges(node) {
                    if mask[e.index()] {
                        continue;
                    }
                    c = c.saturating_add(paths[graph.edge(e).caller.index()]);
                }
                if !is_anchor[i] && c > budget {
                    is_anchor[i] = true;
                    budget_anchors.push(node);
                }
                paths[i] = if is_anchor[i] { 1 } else { c };
            }
        }
        let base_anchor_count = is_anchor.iter().filter(|&&b| b).count();
        let mut overflow_anchors: Vec<NodeIx> = Vec::new();
        let mut restarts = 0usize;

        // The paper's `again:` loop. Each iteration either finishes or adds
        // at least one anchor, so it runs at most `n - base_anchor_count + 1`
        // times.
        'again: loop {
            let territories_span = ScopedSpan::enter(sink, names::ALGO2_TERRITORIES);
            let (nanchors, eanchors) =
                identify_territories(graph, &mask, &is_anchor, config.territory_workers, sink);
            if sink.enabled() {
                let anchor_count = is_anchor.iter().filter(|&&b| b).count() as u64;
                territories_span
                    .finish(&[("iteration", restarts as u64), ("anchors", anchor_count)]);
            }

            // Positional CAV/ICC tables: `cav[i][p]` / `icc_v[i][p]` hold
            // the value relative to anchor `nanchors[i][p]`. The anchor
            // lists come out of territory identification ascending, so a
            // position resolves with a binary search over a short sorted
            // slice — the hot loop never hashes. The public HashMap form is
            // materialized once on success.
            let mut cav: Vec<Vec<u128>> = nanchors.iter().map(|a| vec![0u128; a.len()]).collect();
            let mut icc_v: Vec<Vec<u128>> = nanchors.iter().map(|a| vec![0u128; a.len()]).collect();
            let mut site_av: HashMap<SiteId, u128> = HashMap::new();
            let mut batch_pending: Vec<NodeIx> = Vec::new();

            // The symbolic CAV/ICC interval walk over the topological
            // order. On overflow restart the guard drop-closes the span,
            // so every iteration shows up in the profile.
            let walk_span = ScopedSpan::enter(sink, names::ALGO2_INTERVAL_WALK);
            for &node in &order {
                for &e in graph.in_edges(node) {
                    if mask[e.index()] {
                        continue;
                    }
                    let site = graph.edge(e).site;
                    if site_av.contains_key(&site) {
                        continue;
                    }
                    match calculate_increment(
                        graph, &mask, &nanchors, &eanchors, &mut cav, &icc_v, site, cap,
                    ) {
                        Ok(av) => {
                            site_av.insert(site, av);
                        }
                        Err(overflowing_caller) if config.batch_overflow => {
                            // Keep scanning; restart once with every
                            // overflowing caller anchored.
                            batch_pending.push(overflowing_caller);
                            site_av.insert(site, 0); // placeholder; recomputed
                        }
                        Err(overflowing_caller) => {
                            // Promote the caller to an anchor and restart.
                            if is_anchor[overflowing_caller.index()] {
                                return Err(EncodeError::WidthTooSmall {
                                    width: config.width,
                                });
                            }
                            is_anchor[overflowing_caller.index()] = true;
                            overflow_anchors.push(overflowing_caller);
                            restarts += 1;
                            sink.event(
                                names::ALGO2_RESTART,
                                &[
                                    ("restart", restarts as u64),
                                    ("anchor", overflowing_caller.index() as u64),
                                ],
                            );
                            continue 'again;
                        }
                    }
                }
                let i = node.index();
                if is_anchor[i] {
                    icc_v[i][anchor_pos(&nanchors[i], node)] = 1;
                } else {
                    icc_v[i].copy_from_slice(&cav[i]);
                }
            }
            walk_span.finish(&[
                ("iteration", restarts as u64),
                ("sites", site_av.len() as u64),
            ]);
            if !batch_pending.is_empty() {
                let mut added = 0u64;
                for caller in batch_pending {
                    if !is_anchor[caller.index()] {
                        is_anchor[caller.index()] = true;
                        overflow_anchors.push(caller);
                        added += 1;
                    }
                }
                if added == 0 {
                    return Err(EncodeError::WidthTooSmall {
                        width: config.width,
                    });
                }
                restarts += 1;
                sink.event(
                    names::ALGO2_RESTART,
                    &[("restart", restarts as u64), ("added", added)],
                );
                continue 'again;
            }

            // An anchor's ICC map is `{self: 1}` only — relative values to
            // other anchors are undefined there, so its positional row
            // contributes exactly the 1 at its own slot.
            let mut max_icc = 0u128;
            for i in 0..n {
                if is_anchor[i] {
                    if !nanchors[i].is_empty() {
                        max_icc = max_icc.max(1);
                    }
                } else {
                    for &v in &icc_v[i] {
                        max_icc = max_icc.max(v);
                    }
                }
            }
            let icc: Vec<HashMap<NodeIx, u128>> = (0..n)
                .map(|i| {
                    if is_anchor[i] {
                        let mut m = HashMap::with_capacity(1);
                        m.insert(NodeIx::from_index(i), 1u128);
                        m
                    } else {
                        nanchors[i]
                            .iter()
                            .copied()
                            .zip(icc_v[i].iter().copied())
                            .collect()
                    }
                })
                .collect();
            let mut anchors: Vec<NodeIx> = (0..n)
                .filter(|&i| is_anchor[i])
                .map(NodeIx::from_index)
                .collect();
            anchors.sort_unstable();
            debug_assert_eq!(anchors.len(), base_anchor_count + overflow_anchors.len());
            total.finish(&[
                ("nodes", n as u64),
                ("edges", graph.edge_count() as u64),
                ("anchors", anchors.len() as u64),
                ("overflow_anchors", overflow_anchors.len() as u64),
                ("restarts", restarts as u64),
                ("max_icc", u64::try_from(max_icc).unwrap_or(u64::MAX)),
            ]);
            return Ok(Self {
                width: config.width,
                anchors,
                is_anchor,
                overflow_anchors,
                budget_anchors,
                site_av,
                icc,
                nanchors,
                eanchors,
                excluded: excluded.clone(),
                max_icc,
                restarts,
            });
        }
    }

    /// The addition value of the site producing edge `e`.
    pub fn edge_av(&self, graph: &CallGraph, e: EdgeIx) -> u128 {
        self.site_av[&graph.edge(e).site]
    }

    /// ICC of `node` relative to `anchor`, if `node` is in its territory.
    pub fn icc_of(&self, node: NodeIx, anchor: NodeIx) -> Option<u128> {
        self.icc[node.index()].get(&anchor).copied()
    }

    /// The largest encoding ID value that can occur (`max_icc - 1`); the
    /// paper's Table 1 "max. ID" column when computed at
    /// [`EncodingWidth::UNBOUNDED`].
    pub fn required_max_id(&self) -> u128 {
        self.max_icc.saturating_sub(1)
    }

    /// Number of anchors beyond the roots and forced anchors — the paper's
    /// "6 and 7 anchor nodes for sunflow and xml.validation".
    pub fn overflow_anchor_count(&self) -> usize {
        self.overflow_anchors.len()
    }

    /// Encodes a piece given as a path of edges: the sum of site addition
    /// values, skipping excluded edges (they reset pieces at runtime and
    /// never contribute).
    pub fn encode_piece(&self, graph: &CallGraph, path: &[EdgeIx]) -> u128 {
        path.iter()
            .filter(|e| !self.excluded.contains(e))
            .map(|&e| self.edge_av(graph, e))
            .sum()
    }
}

/// The paper's `IdentifyTerritories`: for each anchor, a DFS that starts at
/// the anchor and retreats at other anchors. Returns the anchors reaching
/// each node (`nanchors`) and each edge (`eanchors`).
///
/// With `workers > 1` the per-anchor walks run on a scoped worker pool (the
/// walks share nothing but the immutable graph); the sequential path is the
/// reference implementation and the parallel path reproduces its output
/// exactly, because both visit anchors in ascending index order and each
/// node/edge is recorded at most once per anchor.
fn identify_territories(
    graph: &CallGraph,
    excluded: &[bool],
    is_anchor: &[bool],
    workers: usize,
    sink: &dyn Telemetry,
) -> (Vec<Vec<NodeIx>>, Vec<Vec<NodeIx>>) {
    let n = graph.node_count();
    let anchor_count = is_anchor.iter().filter(|&&b| b).count();
    // Parallelism only pays once there are several territories to walk;
    // tiny graphs and single-anchor iterations stay on the reference path.
    if workers > 1 && anchor_count > 1 {
        return identify_territories_parallel(graph, excluded, is_anchor, workers, sink);
    }
    let mut nanchors: Vec<Vec<NodeIx>> = vec![Vec::new(); n];
    let mut eanchors: Vec<Vec<NodeIx>> = vec![Vec::new(); graph.edge_count()];
    // Epoch-stamped visited set: one allocation for all anchors (the
    // restart loop calls this once per added anchor, so per-anchor
    // allocations would make the whole analysis quadratic in practice).
    let mut visited = vec![0u32; n];
    let mut epoch = 0u32;
    let mut stack: Vec<NodeIx> = Vec::new();
    for i in 0..n {
        if !is_anchor[i] {
            continue;
        }
        let r = NodeIx::from_index(i);
        epoch += 1;
        visited[i] = epoch;
        nanchors[i].push(r);
        stack.clear();
        stack.push(r);
        while let Some(node) = stack.pop() {
            // The DFS retreats at other anchors: their incoming edges belong
            // to this territory, but their outgoing edges do not.
            if node != r && is_anchor[node.index()] {
                continue;
            }
            for &e in graph.out_edges(node) {
                if excluded[e.index()] {
                    continue;
                }
                eanchors[e.index()].push(r);
                let t = graph.edge(e).callee;
                if visited[t.index()] != epoch {
                    visited[t.index()] = epoch;
                    nanchors[t.index()].push(r);
                    stack.push(t);
                }
            }
        }
    }
    (nanchors, eanchors)
}

/// One anchor's territory walk: the nodes and edges its bounded DFS
/// reaches, recorded once each. Shared by every worker of the parallel
/// path.
fn walk_territory(
    graph: &CallGraph,
    excluded: &[bool],
    is_anchor: &[bool],
    r: NodeIx,
    visited: &mut [u32],
    epoch: u32,
    stack: &mut Vec<NodeIx>,
) -> (Vec<NodeIx>, Vec<EdgeIx>) {
    let mut nodes = vec![r];
    let mut edges = Vec::new();
    visited[r.index()] = epoch;
    stack.clear();
    stack.push(r);
    while let Some(node) = stack.pop() {
        if node != r && is_anchor[node.index()] {
            continue;
        }
        for &e in graph.out_edges(node) {
            if excluded[e.index()] {
                continue;
            }
            edges.push(e);
            let t = graph.edge(e).callee;
            if visited[t.index()] != epoch {
                visited[t.index()] = epoch;
                nodes.push(t);
                stack.push(t);
            }
        }
    }
    (nodes, edges)
}

/// The scoped-thread fan-out behind [`identify_territories`]: the ascending
/// anchor list is cut into one contiguous chunk per worker, each worker
/// walks its chunk with private scratch state, and the chunks merge back in
/// anchor order so every per-node/per-edge anchor list comes out ascending
/// — exactly what the sequential reference produces.
fn identify_territories_parallel(
    graph: &CallGraph,
    excluded: &[bool],
    is_anchor: &[bool],
    workers: usize,
    sink: &dyn Telemetry,
) -> (Vec<Vec<NodeIx>>, Vec<Vec<NodeIx>>) {
    let n = graph.node_count();
    let anchors: Vec<NodeIx> = (0..n)
        .filter(|&i| is_anchor[i])
        .map(NodeIx::from_index)
        .collect();
    let workers = workers.min(anchors.len()).max(1);
    let chunk_len = anchors.len().div_ceil(workers);
    let chunks: Vec<&[NodeIx]> = anchors.chunks(chunk_len).collect();

    // One `(anchor, territory nodes, territory edges)` triple per anchor,
    // grouped by worker chunk.
    type WalkedChunk = Vec<(NodeIx, Vec<NodeIx>, Vec<EdgeIx>)>;
    let walked: Vec<WalkedChunk> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&chunk| {
                scope.spawn(move || {
                    // Worker threads carry their own span: hierarchical
                    // sinks record one lane per worker and merge them by
                    // name into the cross-thread profile.
                    let walk_span = ScopedSpan::enter(sink, names::ALGO2_TERRITORY_WALK);
                    let mut visited = vec![0u32; n];
                    let mut stack: Vec<NodeIx> = Vec::new();
                    let out: WalkedChunk = chunk
                        .iter()
                        .enumerate()
                        .map(|(i, &r)| {
                            let epoch = i as u32 + 1;
                            let (nodes, edges) = walk_territory(
                                graph,
                                excluded,
                                is_anchor,
                                r,
                                &mut visited,
                                epoch,
                                &mut stack,
                            );
                            (r, nodes, edges)
                        })
                        .collect();
                    walk_span.finish(&[("anchors", chunk.len() as u64)]);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("territory worker"))
            .collect()
    });

    let merge_span = ScopedSpan::enter(sink, names::ALGO2_TERRITORY_MERGE);
    let mut nanchors: Vec<Vec<NodeIx>> = vec![Vec::new(); n];
    let mut eanchors: Vec<Vec<NodeIx>> = vec![Vec::new(); graph.edge_count()];
    for (r, nodes, edges) in walked.into_iter().flatten() {
        for node in nodes {
            nanchors[node.index()].push(r);
        }
        for e in edges {
            eanchors[e.index()].push(r);
        }
    }
    merge_span.finish(&[("anchors", anchors.len() as u64)]);
    (nanchors, eanchors)
}

/// Position of anchor `r` in an ascending per-node/per-edge anchor list.
/// Territory identification guarantees membership: an edge's anchors are a
/// subset of both its endpoints' anchors.
#[inline]
fn anchor_pos(list: &[NodeIx], r: NodeIx) -> usize {
    list.binary_search(&r)
        .expect("territory anchor present in the anchor list")
}

/// The paper's `CalculateIncrement` with overflow detection: returns the
/// site's addition value, or `Err(caller)` naming the node to promote to an
/// anchor when a candidate value would exceed the width capacity.
///
/// `cav`/`icc` are the positional tables parallel to `nanchors` (see the
/// interval walk); a caller's ICC row is always assigned before its
/// out-edges are processed, so reads never see an uninitialized slot.
#[allow(clippy::too_many_arguments)]
fn calculate_increment(
    graph: &CallGraph,
    excluded: &[bool],
    nanchors: &[Vec<NodeIx>],
    eanchors: &[Vec<NodeIx>],
    cav: &mut [Vec<u128>],
    icc: &[Vec<u128>],
    site: SiteId,
    cap: u128,
) -> Result<u128, NodeIx> {
    // Line 30-35: a = max over dispatch targets and their reaching anchors.
    let mut av = 0u128;
    for &e in graph.site_edges(site) {
        if excluded[e.index()] {
            continue;
        }
        let callee = graph.edge(e).callee.index();
        for &r in &eanchors[e.index()] {
            av = av.max(cav[callee][anchor_pos(&nanchors[callee], r)]);
        }
    }
    // Line 36-40: raise every target's candidate, checking for overflow.
    // Two phases (check, then commit) so an overflowing site leaves the
    // candidate values untouched — the batched restart mode keeps scanning
    // after an overflow and must not observe partial updates.
    for &e in graph.site_edges(site) {
        if excluded[e.index()] {
            continue;
        }
        let edge = graph.edge(e);
        let caller = edge.caller.index();
        for &r in &eanchors[e.index()] {
            let base = icc[caller][anchor_pos(&nanchors[caller], r)];
            if base.saturating_add(av) > cap {
                return Err(edge.caller);
            }
        }
    }
    for &e in graph.site_edges(site) {
        if excluded[e.index()] {
            continue;
        }
        let edge = graph.edge(e);
        let caller = edge.caller.index();
        let callee = edge.callee.index();
        for &r in &eanchors[e.index()] {
            let base = icc[caller][anchor_pos(&nanchors[caller], r)];
            cav[callee][anchor_pos(&nanchors[callee], r)] = base + av;
        }
    }
    Ok(av)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_ir::{MethodId, SiteId};

    /// The paper's Figure 5 graph: the Figure 4 shape with C and D forced as
    /// anchors. Returns (graph, nodes A..G, sites in creation order:
    /// AB, AC, BD, CD, DE, d2(D'E+DF), c1(CF+CG), EG, FG).
    fn figure5() -> (CallGraph, Vec<NodeIx>, Vec<SiteId>) {
        let mut g = CallGraph::empty();
        let nodes: Vec<NodeIx> = (0..7)
            .map(|i| g.add_node(MethodId::from_index(i)))
            .collect();
        let (a, b, c, d, e, f_, gg) = (
            nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[5], nodes[6],
        );
        g.set_entry(a);
        let sites: Vec<SiteId> = (0..9).map(SiteId::from_index).collect();
        g.add_edge(a, b, sites[0]); // AB
        g.add_edge(a, c, sites[1]); // AC
        g.add_edge(b, d, sites[2]); // BD
        g.add_edge(c, d, sites[3]); // CD
        g.add_edge(d, e, sites[4]); // DE
        g.add_edge(d, e, sites[5]); // D'E (virtual site d2)
        g.add_edge(d, f_, sites[5]); // DF (virtual site d2)
        g.add_edge(c, f_, sites[6]); // CF (virtual site c1)
        g.add_edge(c, gg, sites[6]); // CG (virtual site c1)
        g.add_edge(e, gg, sites[7]); // EG
        g.add_edge(f_, gg, sites[8]); // FG
        (g, nodes, sites)
    }

    fn analyze_figure5() -> (CallGraph, Vec<NodeIx>, Vec<SiteId>, Encoding) {
        let (g, nodes, sites) = figure5();
        let config =
            Algo2Config::new(EncodingWidth::U64).with_forced_anchors(vec![nodes[2], nodes[3]]); // C and D
        let enc = Encoding::analyze(&g, &HashSet::new(), &config).unwrap();
        (g, nodes, sites, enc)
    }

    #[test]
    fn figure5_territories() {
        let (_, nodes, _, enc) = analyze_figure5();
        let (a, c, d) = (nodes[0], nodes[2], nodes[3]);
        // A's territory: A, B, and the boundary anchors C and D.
        assert_eq!(enc.nanchors[nodes[1].index()], vec![a]); // B
        assert!(enc.nanchors[c.index()].contains(&a));
        assert!(enc.nanchors[d.index()].contains(&a));
        // E is only in D's territory.
        assert_eq!(enc.nanchors[nodes[4].index()], vec![d]);
        // F and G are in both C's and D's territories.
        let mut f_anchors = enc.nanchors[nodes[5].index()].clone();
        f_anchors.sort_unstable();
        assert_eq!(f_anchors, vec![c, d]);
        let mut g_anchors = enc.nanchors[nodes[6].index()].clone();
        g_anchors.sort_unstable();
        assert_eq!(g_anchors, vec![c, d]);
    }

    #[test]
    fn figure5_iccs_match_paper() {
        let (_, nodes, _, enc) = analyze_figure5();
        let (c, d, e, f_, gg) = (nodes[2], nodes[3], nodes[4], nodes[5], nodes[6]);
        // Paper annotation: ICC[E][D] = 2.
        assert_eq!(enc.icc_of(e, d), Some(2));
        // Anchors encode relative to themselves with ICC 1.
        assert_eq!(enc.icc_of(c, c), Some(1));
        assert_eq!(enc.icc_of(d, d), Some(1));
        // Derived values following the worked example.
        assert_eq!(enc.icc_of(f_, c), Some(1));
        assert_eq!(enc.icc_of(f_, d), Some(2));
        assert_eq!(enc.icc_of(gg, c), Some(3));
        assert_eq!(enc.icc_of(gg, d), Some(4));
    }

    #[test]
    fn figure5_fg_addition_value_is_two() {
        let (_, _, sites, enc) = analyze_figure5();
        // Paper: max{CAV[G][D], CAV[G][C]} = 2 is used for FG.
        assert_eq!(enc.site_av[&sites[8]], 2);
        // The virtual site in C (CF, CG) gets 0.
        assert_eq!(enc.site_av[&sites[6]], 0);
        // EG gets 0 (first incoming edge of G relative to D).
        assert_eq!(enc.site_av[&sites[7]], 0);
    }

    #[test]
    fn figure5_cfg_piece_encodes_to_two() {
        let (g, _, _, enc) = analyze_figure5();
        // CF is edge index 7, FG is edge index 10 in creation order.
        let id = enc.encode_piece(&g, &[EdgeIx::from_index(7), EdgeIx::from_index(10)]);
        assert_eq!(id, 2);
    }

    #[test]
    fn tiny_width_forces_overflow_anchors() {
        // A deep chain of diamonds doubles the context count at every level;
        // at width 4 (capacity 16) anchors must appear.
        let mut g = CallGraph::empty();
        let mut prev = g.add_node(MethodId::from_index(0));
        g.set_entry(prev);
        let mut next_method = 1;
        let mut next_site = 0;
        for _ in 0..10 {
            let left = g.add_node(MethodId::from_index(next_method));
            let right = g.add_node(MethodId::from_index(next_method + 1));
            let join = g.add_node(MethodId::from_index(next_method + 2));
            next_method += 3;
            for (t, _name) in [(left, "l"), (right, "r")] {
                g.add_edge(prev, t, SiteId::from_index(next_site));
                next_site += 1;
                g.add_edge(t, join, SiteId::from_index(next_site));
                next_site += 1;
            }
            prev = join;
        }
        let unbounded = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::UNBOUNDED),
        )
        .unwrap();
        assert_eq!(unbounded.overflow_anchor_count(), 0);
        assert_eq!(unbounded.max_icc, 1 << 10); // 2^10 contexts at the sink.

        let narrow = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::new(4)),
        )
        .unwrap();
        assert!(narrow.overflow_anchor_count() > 0);
        assert!(narrow.max_icc <= EncodingWidth::new(4).capacity());
        assert_eq!(narrow.restarts, narrow.overflow_anchor_count());
    }

    #[test]
    fn batched_overflow_converges_and_stays_valid() {
        // Same diamond chain as `tiny_width_forces_overflow_anchors`, but
        // with batched placement: fewer restarts, a valid encoding, and an
        // anchor set at most a small factor larger.
        let mut g = CallGraph::empty();
        let mut prev = g.add_node(MethodId::from_index(0));
        g.set_entry(prev);
        let mut next_method = 1;
        let mut next_site = 0;
        for _ in 0..10 {
            let left = g.add_node(MethodId::from_index(next_method));
            let right = g.add_node(MethodId::from_index(next_method + 1));
            let join = g.add_node(MethodId::from_index(next_method + 2));
            next_method += 3;
            for t in [left, right] {
                g.add_edge(prev, t, SiteId::from_index(next_site));
                next_site += 1;
                g.add_edge(t, join, SiteId::from_index(next_site));
                next_site += 1;
            }
            prev = join;
        }
        let one_by_one = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::new(4)),
        )
        .unwrap();
        let batched = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::new(4)).with_batch_overflow(),
        )
        .unwrap();
        assert!(batched.max_icc <= EncodingWidth::new(4).capacity());
        assert!(batched.restarts <= one_by_one.restarts);
        assert!(batched.overflow_anchor_count() >= one_by_one.overflow_anchor_count());
        assert!(batched.overflow_anchor_count() <= 3 * one_by_one.overflow_anchor_count() + 3);
    }

    #[test]
    fn width_one_on_wide_fanin_errors() {
        // Eight parallel call sites from one caller into one callee need an
        // encoding space of 8 at the callee relative to the caller's anchor;
        // capacity 2 cannot hold that no matter where anchors are placed,
        // because anchoring the caller is already the best case.
        let mut g = CallGraph::empty();
        let root = g.add_node(MethodId::from_index(0));
        g.set_entry(root);
        let sink = g.add_node(MethodId::from_index(1));
        for i in 0..8usize {
            g.add_edge(root, sink, SiteId::from_index(i));
        }
        let result = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::new(1)),
        );
        assert!(matches!(result, Err(EncodeError::WidthTooSmall { .. })));
    }

    #[test]
    fn per_anchor_fanin_from_distinct_anchors_fits_tiny_width() {
        // The complementary case: wide fan-in through distinct intermediate
        // nodes is fine at capacity 2 because each intermediate becomes its
        // own anchor and pieces stay one edge long.
        let mut g = CallGraph::empty();
        let root = g.add_node(MethodId::from_index(0));
        g.set_entry(root);
        let sink = g.add_node(MethodId::from_index(1));
        for i in 0..8usize {
            let mid = g.add_node(MethodId::from_index(2 + i));
            g.add_edge(root, mid, SiteId::from_index(2 * i));
            g.add_edge(mid, sink, SiteId::from_index(2 * i + 1));
        }
        let enc = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::new(1)),
        )
        .unwrap();
        assert!(enc.max_icc <= 2);
    }

    #[test]
    fn unbounded_single_anchor_matches_algorithm1() {
        // With only the root as anchor and no overflow, Algorithm 2 must
        // reproduce Algorithm 1's ICCs and addition values.
        let (g, nodes, sites) = figure5();
        let enc = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::UNBOUNDED),
        )
        .unwrap();
        let a1 = crate::algo1::Algo1Encoding::analyze(&g, &HashSet::new()).unwrap();
        let a = nodes[0];
        for node in g.nodes() {
            assert_eq!(
                enc.icc_of(node, a).unwrap_or(1),
                a1.icc[node.index()].max(1),
                "ICC mismatch at {node}"
            );
        }
        for site in &sites {
            assert_eq!(enc.site_av.get(site), a1.site_av.get(site));
        }
        assert_eq!(enc.required_max_id(), a1.max_icc - 1);
    }

    #[test]
    fn parallel_territories_match_sequential() {
        let (g, nodes, _) = figure5();
        let forced = vec![nodes[2], nodes[3]]; // C and D
        let sequential = Encoding::analyze(
            &g,
            &HashSet::new(),
            &Algo2Config::new(EncodingWidth::U64).with_forced_anchors(forced.clone()),
        )
        .unwrap();
        for workers in [2, 3, 8] {
            let parallel = Encoding::analyze(
                &g,
                &HashSet::new(),
                &Algo2Config::new(EncodingWidth::U64)
                    .with_forced_anchors(forced.clone())
                    .with_territory_workers(workers),
            )
            .unwrap();
            assert_eq!(parallel.anchors, sequential.anchors);
            assert_eq!(parallel.nanchors, sequential.nanchors);
            assert_eq!(parallel.eanchors, sequential.eanchors);
            assert_eq!(parallel.site_av, sequential.site_av);
            assert_eq!(parallel.icc, sequential.icc);
            assert_eq!(parallel.max_icc, sequential.max_icc);
        }
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = CallGraph::empty();
        assert_eq!(
            Encoding::analyze(&g, &HashSet::new(), &Algo2Config::new(EncodingWidth::U64))
                .unwrap_err(),
            EncodeError::NoRoots
        );
    }
}
