//! The IR interpreter with instrumentation hooks.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use deltapath_ir::{CallKind, MethodId, Origin, Program, Receiver, SiteId, Stmt};
use deltapath_telemetry::{names, NullTelemetry, ScopedSpan, Telemetry};

use crate::collect::Collector;
use crate::encoder::ContextEncoder;

/// When the interpreter captures contexts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectMode {
    /// Capture nothing (pure overhead runs).
    Nothing,
    /// Capture only at `Observe` statements.
    ObservesOnly,
    /// Capture at the entry of every application-scope method and at
    /// `Observe` statements — the paper's Table 2 methodology ("we collect
    /// the encoded calling contexts at the entry of the instrumented
    /// application functions").
    Entries,
}

/// Interpreter configuration.
#[derive(Clone)]
pub struct VmConfig {
    /// Maximum dynamic call depth (guards runaway recursion).
    pub max_depth: usize,
    /// Maximum number of dynamic calls (guards runaway loops).
    pub max_calls: u64,
    /// Collection mode.
    pub collect: CollectMode,
    /// Base work units charged per dynamic call (models call overhead, so
    /// call-heavy programs have realistic instrumentation-to-work ratios).
    pub call_cost: u64,
    /// The integer parameter passed to the entry method.
    pub entry_param: u32,
    /// The telemetry sink runs report into. The default
    /// [`NullTelemetry`] records nothing and keeps the run free of any
    /// measurement work: the sink is consulted only in the [`Vm::run`]
    /// epilogue, never per call.
    pub telemetry: Arc<dyn Telemetry>,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            max_depth: 1024,
            max_calls: u64::MAX,
            collect: CollectMode::ObservesOnly,
            call_cost: 5,
            entry_param: 0,
            telemetry: Arc::new(NullTelemetry),
        }
    }
}

impl fmt::Debug for VmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmConfig")
            .field("max_depth", &self.max_depth)
            .field("max_calls", &self.max_calls)
            .field("collect", &self.collect)
            .field("call_cost", &self.call_cost)
            .field("entry_param", &self.entry_param)
            .field("telemetry_enabled", &self.telemetry.enabled())
            .finish()
    }
}

impl VmConfig {
    /// Sets the collection mode.
    pub fn with_collect(mut self, collect: CollectMode) -> Self {
        self.collect = collect;
        self
    }

    /// Sets the entry parameter.
    pub fn with_entry_param(mut self, param: u32) -> Self {
        self.entry_param = param;
        self
    }

    /// Sets the call budget.
    pub fn with_max_calls(mut self, max_calls: u64) -> Self {
        self.max_calls = max_calls;
        self
    }

    /// Sets the telemetry sink (e.g. a
    /// [`Recorder`](deltapath_telemetry::Recorder)).
    pub fn with_telemetry(mut self, telemetry: Arc<dyn Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Dynamic statistics of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total dynamic calls executed (including the entry invocation).
    pub calls: u64,
    /// Abstract work units burned by the program itself (method work,
    /// `Work` statements, per-call base cost) — the "native" execution cost
    /// that instrumentation overhead is compared against.
    pub base_cost: u64,
    /// Number of dynamic classes loaded during the run.
    pub dynamic_loads: u64,
    /// Deepest dynamic call depth reached.
    pub max_call_depth: usize,
    /// Number of `Observe` statements executed.
    pub observes: u64,
    /// Number of entry captures recorded (in [`CollectMode::Entries`]).
    pub entries_collected: u64,
}

/// A runtime failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The dynamic call depth limit was exceeded.
    DepthExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The dynamic call budget was exceeded.
    CallBudgetExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A call site failed to resolve at runtime (cannot happen for
    /// validated programs; indicates IR corruption).
    UnresolvedDispatch {
        /// The failing site.
        site: SiteId,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DepthExceeded { limit } => write!(f, "call depth exceeded {limit}"),
            VmError::CallBudgetExceeded { limit } => {
                write!(f, "dynamic call budget exceeded {limit}")
            }
            VmError::UnresolvedDispatch { site } => {
                write!(f, "site {site} failed to resolve at runtime")
            }
        }
    }
}

impl Error for VmError {}

/// The interpreter.
///
/// One `Vm` holds the per-run mutable state (receiver-cycle counters, class
/// loading state, statistics); [`Vm::run`] executes the program from its
/// entry, driving an encoder's hooks at every call, entry, exit and return,
/// exactly where load-time bytecode rewriting would have injected code.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    cycle_counters: Vec<u32>,
    loaded: Vec<bool>,
    /// Pre-resolved dispatch target per site for monomorphic sites (static
    /// calls and fixed-receiver virtual calls) — their target cannot vary
    /// at runtime, so the superclass-chain resolution runs once here
    /// instead of per dynamic call. `None` falls back to full dispatch.
    dispatch: Vec<Option<MethodId>>,
    stats: RunStats,
    app_depth: usize,
}

impl<'p> Vm<'p> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        let dispatch = program
            .sites()
            .iter()
            .map(|site| {
                let class = match site.kind() {
                    CallKind::Static => Some(site.declared()),
                    CallKind::Virtual => match site.receiver().expect("validated virtual site") {
                        Receiver::Fixed(c) => Some(*c),
                        Receiver::Cycle(_) | Receiver::ByParam(_) => None,
                    },
                };
                class.and_then(|c| program.resolve(c, site.method()))
            })
            .collect();
        Self {
            program,
            config,
            cycle_counters: vec![0; program.sites().len()],
            loaded: vec![false; program.classes().len()],
            dispatch,
            stats: RunStats::default(),
            app_depth: 0,
        }
    }

    /// Runs the program to completion.
    ///
    /// When the configured telemetry sink is enabled, the run's epilogue
    /// emits a timed `vm.run` span, the run statistics as `vm.*` counters
    /// and gauges, and the encoder's and collector's own reports (see
    /// [`ContextEncoder::report_telemetry`]). No telemetry work happens
    /// per call, so runs against the default [`NullTelemetry`] execute the
    /// exact same instruction stream as before telemetry existed.
    ///
    /// # Errors
    ///
    /// [`VmError`] when a safety limit is hit (the encoder state is then
    /// unspecified; create a fresh `Vm` and encoder to retry). Failed runs
    /// emit no statistics — only the `vm.run` span closes, so hierarchical
    /// sinks keep their per-thread span stacks balanced.
    pub fn run<E: ContextEncoder>(
        &mut self,
        encoder: &mut E,
        collector: &mut impl Collector,
    ) -> Result<RunStats, VmError> {
        self.stats = RunStats::default();
        self.app_depth = 0;
        self.cycle_counters.iter_mut().for_each(|c| *c = 0);
        self.loaded.iter_mut().for_each(|l| *l = false);

        let sink = Arc::clone(&self.config.telemetry);
        let span = ScopedSpan::enter(sink.as_ref(), names::VM_RUN);
        let entry = self.program.entry();
        encoder.thread_start(entry);
        self.invoke(entry, self.config.entry_param, None, 0, encoder, collector)?;
        if sink.enabled() {
            self.report_run(sink.as_ref(), encoder, collector, span);
        }
        Ok(self.stats)
    }

    /// The run epilogue: statistics, encoder and collector reports, and
    /// the `vm.run` span. Only called for enabled sinks. The span is still
    /// open while the encoder and collector report, so hierarchical sinks
    /// nest their spans (e.g. `collector.shard.merge`) under `vm.run`.
    fn report_run<E: ContextEncoder>(
        &self,
        sink: &dyn Telemetry,
        encoder: &E,
        collector: &impl Collector,
        span: ScopedSpan<'_>,
    ) {
        let stats = &self.stats;
        sink.counter_add(names::VM_CALLS, stats.calls);
        sink.counter_add(names::VM_BASE_COST, stats.base_cost);
        sink.counter_add(names::VM_DYNAMIC_LOADS, stats.dynamic_loads);
        sink.counter_add(names::VM_OBSERVES, stats.observes);
        sink.counter_add(names::VM_ENTRIES_COLLECTED, stats.entries_collected);
        sink.gauge_max(names::VM_MAX_CALL_DEPTH, stats.max_call_depth as u64);
        sink.observe(names::VM_CALL_DEPTH_PEAK, stats.max_call_depth as u64);
        encoder.report_telemetry(sink);
        collector.report_telemetry(sink);
        span.finish(&[("calls", stats.calls), ("base_cost", stats.base_cost)]);
    }

    /// Statistics of the last (or in-progress) run.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    fn invoke<E: ContextEncoder>(
        &mut self,
        method: MethodId,
        param: u32,
        via: Option<SiteId>,
        depth: usize,
        encoder: &mut E,
        collector: &mut impl Collector,
    ) -> Result<(), VmError> {
        if depth >= self.config.max_depth {
            return Err(VmError::DepthExceeded {
                limit: self.config.max_depth,
            });
        }
        if self.stats.calls >= self.config.max_calls {
            return Err(VmError::CallBudgetExceeded {
                limit: self.config.max_calls,
            });
        }
        let program = self.program;
        let m = program.method(method);
        self.stats.calls += 1;
        self.stats.max_call_depth = self.stats.max_call_depth.max(depth + 1);
        self.stats.base_cost += self.config.call_cost + u64::from(m.work());

        // Class loading bookkeeping (dynamic classes load on first use).
        if !self.loaded[m.class().index()] {
            self.loaded[m.class().index()] = true;
            if program.class(m.class()).origin() == Origin::Dynamic {
                self.stats.dynamic_loads += 1;
            }
        }

        // Entry hook — not for the bootstrap invocation of the entry method.
        let entry_token = via.map(|site| encoder.on_entry(method, Some(site)));

        let is_app = program.is_application(method);
        if is_app {
            self.app_depth += 1;
        }
        if self.config.collect == CollectMode::Entries && is_app {
            let capture = encoder.observe(method);
            collector.record_entry(method, self.app_depth, capture);
            self.stats.entries_collected += 1;
        }

        let result = self.exec_block(m.body(), method, param, depth, encoder, collector);

        if is_app {
            self.app_depth -= 1;
        }
        if let Some(token) = entry_token {
            encoder.on_exit(method, token);
        }
        result
    }

    fn exec_block<E: ContextEncoder>(
        &mut self,
        stmts: &'p [Stmt],
        method: MethodId,
        param: u32,
        depth: usize,
        encoder: &mut E,
        collector: &mut impl Collector,
    ) -> Result<(), VmError> {
        for stmt in stmts {
            match stmt {
                Stmt::Call(site) => {
                    self.exec_call(*site, param, depth, encoder, collector)?;
                }
                Stmt::Work(units) => {
                    self.stats.base_cost += u64::from(*units);
                }
                Stmt::Loop {
                    count,
                    bind_param,
                    body,
                } => {
                    for i in 0..*count {
                        let p = if *bind_param { i } else { param };
                        self.exec_block(body, method, p, depth, encoder, collector)?;
                    }
                }
                Stmt::If {
                    modulus,
                    equals,
                    then_branch,
                    else_branch,
                } => {
                    let branch = if param % *modulus == *equals {
                        then_branch
                    } else {
                        else_branch
                    };
                    self.exec_block(branch, method, param, depth, encoder, collector)?;
                }
                Stmt::LoadClass(class) => {
                    if !self.loaded[class.index()] {
                        self.loaded[class.index()] = true;
                        self.stats.dynamic_loads += 1;
                    }
                }
                Stmt::Observe(event) => {
                    let capture = encoder.observe(method);
                    collector.record_observe(*event, method, capture);
                    self.stats.observes += 1;
                }
            }
        }
        Ok(())
    }

    fn exec_call<E: ContextEncoder>(
        &mut self,
        site_id: SiteId,
        param: u32,
        depth: usize,
        encoder: &mut E,
        collector: &mut impl Collector,
    ) -> Result<(), VmError> {
        let program = self.program;
        let site = program.site(site_id);
        // Monomorphic sites were resolved at Vm construction; only
        // polymorphic receivers (or sites whose static resolution failed,
        // which must still surface the runtime error) take the slow path.
        let target = match self.dispatch[site_id.index()] {
            Some(target) => target,
            None => {
                let class = match site.kind() {
                    CallKind::Static => site.declared(),
                    CallKind::Virtual => {
                        let receiver = site.receiver().expect("validated virtual site");
                        match receiver {
                            Receiver::Fixed(c) => *c,
                            Receiver::Cycle(cs) => {
                                let counter = &mut self.cycle_counters[site_id.index()];
                                let c = cs[*counter as usize % cs.len()];
                                *counter = counter.wrapping_add(1);
                                c
                            }
                            Receiver::ByParam(cs) => cs[param as usize % cs.len()],
                        }
                    }
                };
                program
                    .resolve(class, site.method())
                    .ok_or(VmError::UnresolvedDispatch { site: site_id })?
            }
        };
        let arg = site.arg().eval(param);

        let token = encoder.on_call(site_id);
        self.invoke(target, arg, Some(site_id), depth + 1, encoder, collector)?;
        encoder.on_return(site_id, token);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{ContextStats, EventLog, NullCollector};
    use crate::encoder::Capture;
    use crate::encoders::{NullEncoder, StackWalkEncoder};
    use deltapath_ir::{MethodKind, ProgramBuilder};

    fn looping_program() -> Program {
        let mut b = ProgramBuilder::new("loop");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).work(2).finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.loop_(10, |f| {
                    f.call(c, "leaf");
                });
                f.observe(1);
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn counts_calls_and_cost() {
        let p = looping_program();
        let mut vm = Vm::new(&p, VmConfig::default());
        let stats = vm.run(&mut NullEncoder, &mut NullCollector).unwrap();
        assert_eq!(stats.calls, 11); // main + 10 leaf calls
        assert_eq!(stats.observes, 1);
        // base cost: 11 calls * 5 + 10 * work(2)
        assert_eq!(stats.base_cost, 11 * 5 + 20);
        assert_eq!(stats.max_call_depth, 2);
    }

    #[test]
    fn observe_reaches_collector() {
        let p = looping_program();
        let mut vm = Vm::new(&p, VmConfig::default());
        let mut log = EventLog::default();
        let mut walker = StackWalkEncoder::full();
        vm.run(&mut walker, &mut log).unwrap();
        assert_eq!(log.events.len(), 1);
        let (event, method, capture) = &log.events[0];
        assert_eq!(*event, 1);
        assert_eq!(*method, p.entry());
        assert_eq!(*capture, Capture::Walk(vec![p.entry()].into()));
    }

    #[test]
    fn entries_mode_collects_app_methods() {
        let p = looping_program();
        let mut vm = Vm::new(&p, VmConfig::default().with_collect(CollectMode::Entries));
        let mut stats = ContextStats::new();
        let mut walker = StackWalkEncoder::full();
        let run = vm.run(&mut walker, &mut stats).unwrap();
        assert_eq!(run.entries_collected, 11);
        assert_eq!(stats.total_contexts, 11);
        // Two distinct walked contexts: [main] and [main, leaf].
        assert_eq!(stats.unique_contexts(), 2);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn call_budget_is_enforced() {
        let p = looping_program();
        let mut vm = Vm::new(&p, VmConfig::default().with_max_calls(5));
        let err = vm.run(&mut NullEncoder, &mut NullCollector).unwrap_err();
        assert_eq!(err, VmError::CallBudgetExceeded { limit: 5 });
    }

    #[test]
    fn depth_limit_stops_unbounded_recursion() {
        let mut b = ProgramBuilder::new("inf");
        let c = b.add_class("C", None);
        b.method(c, "spin", MethodKind::Static)
            .body(|f| {
                f.call(c, "spin");
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "spin");
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let err = vm.run(&mut NullEncoder, &mut NullCollector).unwrap_err();
        assert_eq!(err, VmError::DepthExceeded { limit: 1024 });
    }

    #[test]
    fn cycle_receivers_rotate_deterministically() {
        let mut b = ProgramBuilder::new("cyc");
        let a = b.add_class("A", None);
        let c1 = b.add_class("C1", Some(a));
        b.method(a, "f", MethodKind::Virtual).work(1).finish();
        b.method(c1, "f", MethodKind::Virtual).work(10).finish();
        let main = b
            .method(a, "main", MethodKind::Static)
            .body(|f| {
                f.loop_(4, |f| {
                    f.vcall(a, "f", deltapath_ir::Receiver::Cycle(vec![a, c1]));
                });
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let stats = vm.run(&mut NullEncoder, &mut NullCollector).unwrap();
        // 2x A.f (work 1) + 2x C1.f (work 10) + 5 calls * 5.
        assert_eq!(stats.base_cost, 2 + 20 + 5 * 5);
    }

    #[test]
    fn by_param_receiver_uses_argument() {
        let mut b = ProgramBuilder::new("byp");
        let a = b.add_class("A", None);
        let c1 = b.add_class("C1", Some(a));
        b.method(a, "f", MethodKind::Virtual).work(1).finish();
        b.method(c1, "f", MethodKind::Virtual).work(10).finish();
        let main = b
            .method(a, "main", MethodKind::Static)
            .body(|f| {
                f.loop_bind(4, |f| {
                    f.vcall_arg(
                        a,
                        "f",
                        deltapath_ir::Receiver::ByParam(vec![a, c1]),
                        deltapath_ir::ArgExpr::Param,
                    );
                });
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let stats = vm.run(&mut NullEncoder, &mut NullCollector).unwrap();
        // params 0..3 → A, C1, A, C1.
        assert_eq!(stats.base_cost, 2 + 20 + 5 * 5);
    }

    #[test]
    fn dynamic_loads_are_counted_once() {
        let mut b = ProgramBuilder::new("dyn");
        let a = b.add_class("A", None);
        let x = b.add_dynamic_class("X", Some(a));
        b.method(a, "f", MethodKind::Virtual).finish();
        b.method(x, "f", MethodKind::Virtual).finish();
        let main = b
            .method(a, "main", MethodKind::Static)
            .body(|f| {
                f.loop_(3, |f| {
                    f.vcall(a, "f", deltapath_ir::Receiver::Cycle(vec![a, x]));
                });
            })
            .finish();
        b.entry(main);
        let p = b.finish().unwrap();
        let mut vm = Vm::new(&p, VmConfig::default());
        let stats = vm.run(&mut NullEncoder, &mut NullCollector).unwrap();
        assert_eq!(stats.dynamic_loads, 1);
    }
}
