//! The encoder hook interface the interpreter drives.
//!
//! The original system rewrites bytecode so that every call site and method
//! entry/exit executes a few extra instructions. Our interpreter instead
//! invokes the hooks of a [`ContextEncoder`] at exactly those program
//! points; each encoder implements one technique (DeltaPath, PCC, stack
//! walking, …) and meters the abstract operations it would have executed
//! inline, so relative overheads can be compared on equal footing.

use std::sync::Arc;

use deltapath_core::EncodedContext;
use deltapath_ir::{MethodId, SiteId};
use deltapath_telemetry::Telemetry;

/// A captured calling-context value, as produced by some encoder at an
/// observation point.
///
/// `Capture` is hashable so collectors can count unique contexts uniformly
/// across techniques (the paper's Table 2 "unique contexts" columns).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Capture {
    /// DeltaPath: the precise encoded context (stack + ID).
    Delta(EncodedContext),
    /// Probabilistic calling context: one hash value.
    Pcc(u64),
    /// A walked stack: the method sequence itself (ground truth). Shared
    /// rather than owned so an unchanged shadow stack can be captured many
    /// times without re-cloning it (collectors clone captures freely).
    Walk(Arc<[MethodId]>),
    /// A pointer into a calling-context tree, identified by node index.
    CctNode(usize),
    /// Hybrid PCC+DeltaPath (paper Section 8): the PCC hash of the trunk
    /// prefix plus the DeltaPath encoding of the context below the trunk
    /// boundary.
    Hybrid {
        /// PCC value of the trunk prefix at the boundary crossing.
        trunk_v: u64,
        /// DeltaPath encoding of the part below the trunk.
        ctx: EncodedContext,
    },
    /// The encoder does not capture contexts (native baseline).
    None,
}

/// Abstract operation counts for one encoder over one run.
///
/// The weights in [`CostModel`] convert these into a single overhead figure
/// comparable across techniques.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `ID += av` operations (DeltaPath call sites).
    pub adds: u64,
    /// `ID -= av` operations (DeltaPath returns).
    pub subs: u64,
    /// Hash-mix operations (PCC's `V' = 3V + cs`).
    pub hashes: u64,
    /// Expected-SID saves around calls (call-path tracking).
    pub pending_saves: u64,
    /// SID comparisons at method entries (call-path tracking).
    pub sid_checks: u64,
    /// Encoding-stack pushes (anchors, recursion, hazardous UCPs).
    pub pushes: u64,
    /// Encoding-stack pops at method exits.
    pub pops: u64,
    /// Stack frames visited by stack walking at observation points.
    pub walked_frames: u64,
    /// Calling-context-tree node traversals.
    pub cct_moves: u64,
}

impl OpCounts {
    /// Weighted total cost under `model`, saturating at `u64::MAX`.
    ///
    /// Long sweeps accumulate counts near the integer ceiling (and tests
    /// deliberately construct them); a wrapped total would silently report
    /// a tiny overhead for the most expensive run.
    pub fn cost(&self, model: &CostModel) -> u64 {
        [
            self.adds.saturating_mul(model.add),
            self.subs.saturating_mul(model.sub),
            self.hashes.saturating_mul(model.hash),
            self.pending_saves.saturating_mul(model.pending_save),
            self.sid_checks.saturating_mul(model.sid_check),
            self.pushes.saturating_mul(model.push),
            self.pops.saturating_mul(model.pop),
            self.walked_frames.saturating_mul(model.walk_frame),
            self.cct_moves.saturating_mul(model.cct_move),
        ]
        .into_iter()
        .fold(0u64, u64::saturating_add)
    }
}

/// Emits `counts` into `sink` as `ops.<technique>.<op>` counters — the
/// default body of [`ContextEncoder::report_telemetry`]. All nine op
/// counters are always emitted (zeros included) so a report's counter set
/// is the same for every run of a technique.
pub fn report_op_counts(sink: &dyn Telemetry, technique: &str, counts: &OpCounts) {
    for (op, value) in [
        ("adds", counts.adds),
        ("subs", counts.subs),
        ("hashes", counts.hashes),
        ("pending_saves", counts.pending_saves),
        ("sid_checks", counts.sid_checks),
        ("pushes", counts.pushes),
        ("pops", counts.pops),
        ("walked_frames", counts.walked_frames),
        ("cct_moves", counts.cct_moves),
    ] {
        sink.counter_add(&format!("ops.{technique}.{op}"), value);
    }
}

/// Per-operation weights, in abstract work units (the same units the IR's
/// `Work` statements burn).
///
/// The defaults reflect instruction counts of the obvious x86 lowering
/// (thread-local load + arithmetic + store, etc.); the criterion benches in
/// `deltapath-bench` measure the real per-op costs so the weights can be
/// recalibrated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// `ID += av`: load TL, add, store.
    pub add: u64,
    /// `ID -= av`.
    pub sub: u64,
    /// PCC hash mix `3V + cs`.
    pub hash: u64,
    /// Saving/restoring the expected SID and ID around a call.
    pub pending_save: u64,
    /// SID comparison at entry.
    pub sid_check: u64,
    /// Push (anchor/recursion/UCP) including tag packing.
    pub push: u64,
    /// Pop at exit.
    pub pop: u64,
    /// Visiting one frame during a stack walk.
    pub walk_frame: u64,
    /// Moving to a child/parent in a calling-context tree (hash lookup).
    pub cct_move: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            add: 2,
            sub: 2,
            hash: 4,
            pending_save: 4,
            sid_check: 2,
            push: 8,
            pop: 4,
            walk_frame: 12,
            cct_move: 10,
        }
    }
}

/// The instrumentation hook interface.
///
/// The interpreter invokes the hooks at every call site and method
/// entry/exit — unconditionally, for every technique; the encoder itself
/// decides (from its plan) whether a given site/method is instrumented, just
/// as real injected code simply would not exist at uninstrumented points.
///
/// The token types thread caller-saved state through the VM's native stack,
/// the way real instrumentation keeps saved values in the caller's frame.
pub trait ContextEncoder {
    /// Caller-saved state returned by [`on_call`](Self::on_call) and consumed
    /// by [`on_return`](Self::on_return).
    type CallToken;
    /// Entry state returned by [`on_entry`](Self::on_entry) and consumed by
    /// [`on_exit`](Self::on_exit).
    type EntryToken;

    /// A thread begins executing at `entry` (bootstrap; no entry hook runs
    /// for the entry method itself).
    fn thread_start(&mut self, entry: MethodId);

    /// Before dispatching the call at `site`.
    fn on_call(&mut self, site: SiteId) -> Self::CallToken;

    /// After the call at `site` returned.
    fn on_return(&mut self, site: SiteId, token: Self::CallToken);

    /// At the entry of `method`; `via_site` is the dispatching site.
    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> Self::EntryToken;

    /// At the exit of `method`.
    fn on_exit(&mut self, method: MethodId, token: Self::EntryToken);

    /// Captures the current calling-context value at `at`.
    fn observe(&mut self, at: MethodId) -> Capture;

    /// The abstract operations executed so far.
    fn counts(&self) -> OpCounts;

    /// A short technique name for reports (e.g. `"deltapath"`, `"pcc"`).
    fn name(&self) -> &'static str;

    /// Reports this encoder's metrics into `sink`. The VM calls this once
    /// at the end of a run when telemetry is enabled; it is never invoked
    /// on the hot path. The default emits the abstract op counts as
    /// `ops.<technique>.<op>` counters; encoders with richer internal
    /// state (e.g. [`DeltaEncoder`](crate::DeltaEncoder)) extend it.
    fn report_telemetry(&self, sink: &dyn Telemetry) {
        report_op_counts(sink, self.name(), &self.counts());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_apply() {
        let counts = OpCounts {
            adds: 10,
            subs: 10,
            hashes: 5,
            ..OpCounts::default()
        };
        let model = CostModel {
            add: 2,
            sub: 1,
            hash: 3,
            ..CostModel::default()
        };
        assert_eq!(counts.cost(&model), 10 * 2 + 10 + 5 * 3);
    }

    #[test]
    fn cost_saturates_instead_of_wrapping() {
        // Counts adjacent to u64::MAX must pin the total at the ceiling;
        // the old plain `*`/`+` arithmetic wrapped to a near-zero figure
        // in release builds (and panicked in debug).
        let counts = OpCounts {
            adds: u64::MAX - 1,
            subs: u64::MAX,
            walked_frames: u64::MAX / 2,
            ..OpCounts::default()
        };
        assert_eq!(counts.cost(&CostModel::default()), u64::MAX);
        // A single saturated term dominates even with everything else zero.
        let single = OpCounts {
            cct_moves: u64::MAX,
            ..OpCounts::default()
        };
        assert_eq!(single.cost(&CostModel::default()), u64::MAX);
        // Sane counts still produce the exact weighted sum.
        let sane = OpCounts {
            adds: 3,
            pops: 2,
            ..OpCounts::default()
        };
        let model = CostModel::default();
        assert_eq!(sane.cost(&model), 3 * model.add + 2 * model.pop);
    }

    #[test]
    fn op_counts_report_as_counters() {
        use deltapath_telemetry::Recorder;
        let sink = Recorder::new();
        let counts = OpCounts {
            adds: 7,
            pushes: 2,
            ..OpCounts::default()
        };
        report_op_counts(&sink, "demo", &counts);
        let report = sink.report("t");
        assert_eq!(report.counter("ops.demo.adds"), Some(7));
        assert_eq!(report.counter("ops.demo.pushes"), Some(2));
        // Zero-valued ops are present too: stable counter set per run.
        assert_eq!(report.counter("ops.demo.cct_moves"), Some(0));
        assert_eq!(report.counters.len(), 9);
    }

    #[test]
    fn captures_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Capture::Pcc(1));
        set.insert(Capture::Pcc(1));
        set.insert(Capture::Pcc(2));
        set.insert(Capture::None);
        assert_eq!(set.len(), 3);
    }
}
