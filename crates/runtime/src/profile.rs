//! Per-context entry counting and the *context flamegraph*: decode the
//! collected encodings back into call stacks and weight each stack by how
//! often it was entered — the paper's context-sensitive-profiling payoff,
//! rendered in the standard folded-stack format.
//!
//! [`ContextStats`](crate::ContextStats) deliberately keeps only the
//! *distinct* capture set (its sharded path memo-suppresses repeats, so
//! per-capture counts cannot be recovered from it). [`ContextProfile`] is
//! the collector that does count: a capture-keyed frequency map, cheap at
//! runtime because DeltaPath captures are small hashable values, decoded
//! only once per distinct context when folding.

use std::collections::HashMap;

use deltapath_core::Decoder;
use deltapath_ir::{MethodId, Program};
use deltapath_telemetry::FoldedStacks;

use crate::encoder::Capture;
use crate::Collector;

/// A collector counting method entries per distinct captured context.
///
/// Works with any encoder: DeltaPath captures are decoded when folding,
/// shadow-stack walks fold directly (which is what lets the flamegraph
/// validate against the [`StackWalkEncoder`](crate::StackWalkEncoder)
/// oracle), and undecodable captures (PCC hashes, CCT node indices) are
/// counted but reported as skipped.
#[derive(Clone, Debug, Default)]
pub struct ContextProfile {
    counts: HashMap<Capture, u64>,
}

impl ContextProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct captured contexts.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total entries recorded across all contexts.
    pub fn total(&self) -> u64 {
        self.counts.values().fold(0, |a, &c| a.saturating_add(c))
    }

    /// The capture-keyed counts (unordered).
    pub fn counts(&self) -> impl Iterator<Item = (&Capture, u64)> {
        self.counts.iter().map(|(c, &n)| (c, n))
    }

    /// Absorbs another profile (commutative, lossless).
    pub fn merge(&mut self, other: &ContextProfile) {
        for (capture, &count) in &other.counts {
            let slot = self.counts.entry(capture.clone()).or_insert(0);
            *slot = slot.saturating_add(count);
        }
    }

    /// Folds the profile into flamegraph stacks weighted by entry count,
    /// decoding DeltaPath captures through `decoder` (the memoized piece
    /// cache makes repeated anchors cheap) and folding shadow-stack walks
    /// directly. Returns the stacks plus the number of *entries* that could
    /// not be rendered as a call path: capture kinds with no decodable
    /// context (PCC, CCT, hybrid, none) and DeltaPath captures taken inside
    /// code the plan never encoded (entries in dynamically loaded classes),
    /// whose decode necessarily fails.
    pub fn folded(&self, program: &Program, decoder: &Decoder) -> (FoldedStacks, u64) {
        let mut stacks = FoldedStacks::new();
        let mut skipped = 0u64;
        for (capture, &count) in &self.counts {
            match capture {
                Capture::Delta(ctx) => match decoder.decode(ctx) {
                    Ok(context) => stacks.add(&fold_path(program, &context), count),
                    Err(_) => skipped = skipped.saturating_add(count),
                },
                Capture::Walk(stack) => {
                    stacks.add(&fold_path(program, stack), count);
                }
                Capture::Pcc(_) | Capture::CctNode(_) | Capture::Hybrid { .. } | Capture::None => {
                    skipped = skipped.saturating_add(count);
                }
            }
        }
        (stacks, skipped)
    }
}

impl Collector for ContextProfile {
    fn record_entry(&mut self, _method: MethodId, _true_depth: usize, capture: Capture) {
        let slot = self.counts.entry(capture).or_insert(0);
        *slot = slot.saturating_add(1);
    }

    fn record_observe(&mut self, _event: u32, _method: MethodId, _capture: Capture) {}
}

/// Joins a decoded context (outermost first) into one folded-stack line,
/// sanitizing method names so they cannot break the `stack weight` format
/// (frames may contain neither `;` nor whitespace). Public so oracles and
/// tools composing their own [`FoldedStacks`] produce byte-identical frames.
pub fn fold_path(program: &Program, context: &[MethodId]) -> String {
    let mut out = String::new();
    for (i, &m) in context.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        for ch in program.method_name(m).chars() {
            out.push(if ch == ';' || ch.is_whitespace() {
                '_'
            } else {
                ch
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counts() {
        let mut a = ContextProfile::new();
        a.record_entry(MethodId::from_index(0), 1, Capture::Pcc(7));
        a.record_entry(MethodId::from_index(0), 1, Capture::Pcc(7));
        let mut b = ContextProfile::new();
        b.record_entry(MethodId::from_index(0), 1, Capture::Pcc(7));
        b.record_entry(MethodId::from_index(1), 1, Capture::CctNode(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total(), 4);
        let pcc = a
            .counts()
            .find(|(c, _)| matches!(c, Capture::Pcc(7)))
            .expect("pcc entry");
        assert_eq!(pcc.1, 3);
    }
}
