//! # deltapath-runtime
//!
//! The execution substrate for the DeltaPath reproduction: an interpreter
//! for [`deltapath_ir`] programs with instrumentation hooks at every call
//! site and method entry/exit — the places where the original system's Java
//! agent injects code at class-load time.
//!
//! The interpreter ([`Vm`]) is generic over a [`ContextEncoder`], so every
//! calling-context technique runs over identical executions:
//!
//! * [`NullEncoder`] — the native baseline;
//! * [`DeltaEncoder`] — DeltaPath, driving the state machine from
//!   `deltapath-core` according to an
//!   [`EncodingPlan`](deltapath_core::EncodingPlan);
//! * [`CompiledDeltaEncoder`] — the same technique over a
//!   [`CompiledPlan`](deltapath_core::CompiledPlan)'s dense dispatch
//!   tables: one array load per hook, no hashing (the deployment-shaped
//!   hot path; the map-based encoder is the reference oracle);
//! * [`BatchedDeltaEncoder`] — the same technique again, but buffering
//!   hooks as packed [`HookWord`](deltapath_core::HookWord)s and pushing
//!   slices through the branchless batch kernel
//!   ([`CompiledPlan::apply_batch`](deltapath_core::CompiledPlan::apply_batch));
//! * [`StackWalkEncoder`] — stack walking (precise but expensive; also the
//!   ground truth for precision experiments);
//! * PCC, Breadcrumbs-lite and the calling-context tree live in
//!   `deltapath-baselines`.
//!
//! Encoders meter their abstract operations ([`OpCounts`]) and a
//! [`CostModel`] turns the counts into overhead comparable across
//! techniques — this is how the paper's Figure 8 throughput comparison is
//! regenerated without a JVM.
//!
//! # Example
//!
//! ```
//! use deltapath_ir::{MethodKind, ProgramBuilder};
//! use deltapath_core::{EncodingPlan, PlanConfig};
//! use deltapath_runtime::{DeltaEncoder, EventLog, Vm, VmConfig};
//!
//! let mut b = ProgramBuilder::new("hello");
//! let c = b.add_class("Main", None);
//! b.method(c, "helper", MethodKind::Static)
//!     .body(|f| {
//!         f.observe(42);
//!     })
//!     .finish();
//! let main = b
//!     .method(c, "main", MethodKind::Static)
//!     .body(|f| {
//!         f.call(c, "helper");
//!     })
//!     .finish();
//! b.entry(main);
//! let program = b.finish()?;
//!
//! let plan = EncodingPlan::analyze(&program, &PlanConfig::default())?;
//! let mut vm = Vm::new(&program, VmConfig::default());
//! let mut encoder = DeltaEncoder::new(&plan);
//! let mut log = EventLog::default();
//! vm.run(&mut encoder, &mut log)?;
//!
//! // The logged encoding decodes to the exact calling context.
//! let deltapath_runtime::Capture::Delta(ctx) = &log.events[0].2 else {
//!     unreachable!()
//! };
//! let context = plan.decoder().decode(ctx)?;
//! assert_eq!(context.len(), 2); // main -> helper
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod collect;
mod compiled;
mod encoder;
mod encoders;
mod profile;
mod shard;
mod vm;

pub use batch::{BatchedDeltaEncoder, DEFAULT_BATCH_CAPACITY};
pub use collect::{Collector, ContextStats, EventLog, NullCollector, RelativeCollector};
pub use compiled::{CompiledDeltaEncoder, HookSampler};
pub use encoder::{report_op_counts, Capture, ContextEncoder, CostModel, OpCounts};
pub use encoders::{DeltaEncoder, NullEncoder, StackWalkEncoder};
pub use profile::{fold_path, ContextProfile};
pub use shard::{ShardHandle, ShardedCollector, DEFAULT_BATCH, DEFAULT_SHARDS};
pub use vm::{CollectMode, RunStats, Vm, VmConfig, VmError};
