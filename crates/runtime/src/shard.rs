//! Lock-striped concurrent context collection.
//!
//! The paper's runtime keeps one `DeltaState` per thread over a shared
//! immutable plan (Section 5); the contexts those threads capture still
//! have to land in one statistics table. A single mutex around a
//! [`ContextStats`] serializes every capture; [`ShardedCollector`] removes
//! that wall with three independent levers:
//!
//! * **Striping** — the distinct-capture set is split into `2^k` shards,
//!   each its own [`ContextStats`] behind its own lock. A capture is
//!   routed by a deterministic projection hash of the [`Capture`] value,
//!   so *equal captures always land in the same shard*: the per-shard
//!   sets are disjoint and their union is exactly the sequential set.
//! * **Batching** — each thread records into a private [`ShardHandle`]
//!   and locks shards only at batch boundaries. Counters (totals, sums,
//!   maxima) accumulate thread-locally between flushes; they are
//!   commutative, so merging them per batch is lossless.
//! * **Memoization** — a handle remembers which captures it has already
//!   forwarded. Set union makes re-delivery redundant, so a repeated hot
//!   context costs one local probe: no lock, no re-derived statistics,
//!   no cross-thread traffic. (Equal captures have equal derived
//!   statistics, so reusing the memoized values is exact, and a capture
//!   evicted by the memo capacity bound is merely re-forwarded — the
//!   shard set deduplicates.)
//!
//! Merging (see [`ContextStats::merge`]) is commutative and associative,
//! so flush interleaving across threads cannot change the final report.
//! [`ShardedCollector::report_telemetry`] emits the merged stats under the
//! same `collector.stats.*` names a plain [`ContextStats`] uses — the
//! `RunReport` schema is unchanged — plus the `collector.shard.*` family
//! describing the sharding itself.
//!
//! A batch size of 1 selects **unbuffered mode**: the handle takes the
//! shard lock and applies every event immediately, with no local state.
//! With one shard ([`ShardedCollector::single_shard`]) that is precisely
//! the naive global-mutex collector — the baseline the `mt_throughput`
//! bench measures against.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use deltapath_ir::MethodId;
use deltapath_telemetry::{names, ScopedSpan, Telemetry};

use crate::collect::{delta_parts, Collector, ContextStats};
use crate::encoder::Capture;

/// Default shard count (16 — comfortably more stripes than a small VM
/// thread pool, still a trivial memory footprint).
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-handle batch size (events between flushes).
pub const DEFAULT_BATCH: usize = 256;

/// Per-handle memo capacity. Once full the memo stops admitting new
/// captures (popularity is heavily skewed, so the first distinct captures
/// are the ones worth keeping); unmemoized captures are simply forwarded
/// on every occurrence and deduplicated by the shard set.
const MEMO_CAPACITY: usize = 1 << 16;

/// A fast keyless multiply-rotate hasher (the Fowler/rustc "Fx" recipe)
/// for routing and memo probes, both of which sit on the per-event hot
/// path. Unlike `std`'s SipHash it is not DoS-resistant, which is fine
/// here: the inputs are the program's own captures, not attacker-chosen
/// keys, and collisions only cost a full-equality compare. Being keyless
/// also makes it deterministic — every handle of every collector agrees
/// on the routing, which the shard-disjointness argument requires.
#[derive(Default)]
struct FastHasher {
    hash: u64,
}

impl FastHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Writes a cheap projection of `capture` into `h`. Equal captures
/// produce equal projections (a pure function of the value), which is all
/// that routing and the memo's bucket choice need — full [`PartialEq`]
/// settles collisions. Deliberately skips the frame vector, whose
/// per-frame hashing would dominate the hot path.
fn hash_projection(capture: &Capture, h: &mut impl Hasher) {
    match capture {
        Capture::Delta(ctx) => {
            h.write_u8(0);
            h.write_u64(ctx.id);
            h.write_usize(ctx.at.index());
            h.write_usize(ctx.frames.len());
            if let Some(top) = ctx.frames.last() {
                h.write_usize(top.node.index());
                h.write_u64(top.saved_id);
            }
        }
        Capture::Pcc(v) => {
            h.write_u8(1);
            h.write_u64(*v);
        }
        Capture::Walk(stack) => {
            h.write_u8(2);
            h.write_usize(stack.len());
            if let Some(first) = stack.first() {
                h.write_usize(first.index());
            }
            if let Some(last) = stack.last() {
                h.write_usize(last.index());
            }
        }
        Capture::CctNode(n) => {
            h.write_u8(3);
            h.write_usize(*n);
        }
        Capture::Hybrid { trunk_v, ctx } => {
            h.write_u8(4);
            h.write_u64(*trunk_v);
            h.write_u64(ctx.id);
            h.write_usize(ctx.frames.len());
        }
        Capture::None => h.write_u8(5),
    }
}

/// The deterministic routing hash ([`FastHasher`] is keyless, so every
/// handle of every collector agrees on it).
fn route_hash(capture: &Capture) -> u64 {
    let mut h = FastHasher::default();
    hash_projection(capture, &mut h);
    h.finish()
}

/// Memo key: full-equality [`Capture`] hashed by its cheap projection.
#[derive(Debug)]
struct MemoKey(Capture);

impl PartialEq for MemoKey {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for MemoKey {}

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, h: &mut H) {
        hash_projection(&self.0, h);
    }
}

#[derive(Debug)]
struct Inner {
    /// `shards.len()` is a power of two; `mask == shards.len() - 1`.
    shards: Vec<Mutex<ContextStats>>,
    mask: u64,
    batch: usize,
    /// Round-robin assignment of handles' home shards (where their
    /// counter batches land).
    next_home: AtomicUsize,
    flushes: AtomicU64,
    events: AtomicU64,
    memo_hits: AtomicU64,
}

impl Inner {
    fn shard_of(&self, capture: &Capture) -> usize {
        (route_hash(capture) & self.mask) as usize
    }
}

/// A lock-striped, batch-flushed concurrent [`ContextStats`] (see the
/// [module docs](self)).
///
/// The collector itself is shared; each VM thread records through its own
/// [`handle`](ShardedCollector::handle). After the threads are done (all
/// handles dropped or [`flush`](ShardHandle::flush)ed),
/// [`stats`](ShardedCollector::stats) yields the merged statistics.
#[derive(Clone, Debug)]
pub struct ShardedCollector {
    inner: Arc<Inner>,
}

impl Default for ShardedCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCollector {
    /// A collector with [`DEFAULT_SHARDS`] shards and [`DEFAULT_BATCH`]
    /// batching.
    pub fn new() -> Self {
        Self::with_config(DEFAULT_SHARDS, DEFAULT_BATCH)
    }

    /// A collector with explicit shard count (rounded up to a power of
    /// two, minimum 1) and per-handle batch size (minimum 1; `1` selects
    /// unbuffered mode — see the [module docs](self)).
    pub fn with_config(shards: usize, batch: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Self {
            inner: Arc::new(Inner {
                shards: (0..shards)
                    .map(|_| Mutex::new(ContextStats::new()))
                    .collect(),
                mask: shards as u64 - 1,
                batch: batch.max(1),
                next_home: AtomicUsize::new(0),
                flushes: AtomicU64::new(0),
                events: AtomicU64::new(0),
                memo_hits: AtomicU64::new(0),
            }),
        }
    }

    /// The degenerate configuration — one shard, unbuffered — i.e. a
    /// global mutex taken on every event. This is the contended baseline
    /// the throughput bench compares against.
    pub fn single_shard() -> Self {
        Self::with_config(1, 1)
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The per-handle batch size.
    pub fn batch_size(&self) -> usize {
        self.inner.batch
    }

    /// Flushes performed so far across all handles (in unbuffered mode,
    /// every event is its own flush).
    pub fn flushes(&self) -> u64 {
        self.inner.flushes.load(Ordering::Relaxed)
    }

    /// Events recorded through this collector's handles and already
    /// delivered by a flush.
    pub fn events(&self) -> u64 {
        self.inner.events.load(Ordering::Relaxed)
    }

    /// Events whose capture was served from a handle's memo (no shard
    /// delivery needed).
    pub fn memo_hits(&self) -> u64 {
        self.inner.memo_hits.load(Ordering::Relaxed)
    }

    /// A new per-thread recording handle.
    pub fn handle(&self) -> ShardHandle {
        let home = self.inner.next_home.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len();
        ShardHandle {
            inner: self.inner.clone(),
            home,
            buf: Vec::new(),
            local: ContextStats::new(),
            memo: HashMap::default(),
            pending: 0,
            pending_hits: 0,
        }
    }

    /// Merges all shards into one [`ContextStats`] snapshot.
    ///
    /// Events still sitting in live handles are not included — flush or
    /// drop the handles first.
    pub fn stats(&self) -> ContextStats {
        self.stats_with(&deltapath_telemetry::NullTelemetry)
    }

    /// As [`ShardedCollector::stats`], emitting a timed
    /// `collector.shard.merge` span (with the shard count) into `sink`
    /// for the cross-shard merge.
    pub fn stats_with(&self, sink: &dyn Telemetry) -> ContextStats {
        let span = ScopedSpan::enter(sink, names::COLLECTOR_SHARD_MERGE);
        let mut merged = ContextStats::new();
        for shard in &self.inner.shards {
            merged.merge(shard.lock().expect("shard poisoned").clone());
        }
        span.finish(&[("shards", self.shard_count() as u64)]);
        merged
    }

    /// Emits the `collector.shard.*` family plus the merged statistics
    /// (same `collector.stats.*` names a plain [`ContextStats`] reports,
    /// so the `RunReport` schema is unchanged).
    ///
    /// Handles deliberately do *not* implement
    /// [`Collector::report_telemetry`]: the VM invokes that once per run,
    /// and with several threads sharing this collector the merged numbers
    /// would multiply. Report once, from the owner, through this method.
    pub fn report_telemetry(&self, sink: &dyn Telemetry) {
        if !sink.enabled() {
            return;
        }
        sink.gauge_max(names::COLLECTOR_SHARD_SHARDS, self.shard_count() as u64);
        sink.gauge_max(names::COLLECTOR_SHARD_BATCH, self.batch_size() as u64);
        sink.counter_add(names::COLLECTOR_SHARD_FLUSHES, self.flushes());
        sink.counter_add(names::COLLECTOR_SHARD_EVENTS, self.events());
        sink.counter_add(names::COLLECTOR_SHARD_MEMO_HITS, self.memo_hits());
        self.stats_with(sink).report_telemetry(sink);
    }
}

/// A per-thread handle recording into a [`ShardedCollector`].
///
/// Counters accumulate locally and distinct new captures append to a
/// private buffer; when the batch size is reached both are flushed —
/// buffered captures grouped by destination shard, counters merged into
/// the handle's home shard. Dropping the handle flushes the remainder.
#[derive(Debug)]
pub struct ShardHandle {
    inner: Arc<Inner>,
    home: usize,
    /// Distinct captures awaiting delivery to their shards.
    buf: Vec<Capture>,
    /// Locally accumulated counters (the distinct set stays empty).
    local: ContextStats,
    /// Captures already forwarded, with their memoized derived values.
    memo: HashMap<MemoKey, Option<(usize, usize, u64)>, BuildHasherDefault<FastHasher>>,
    /// Events recorded since the last flush.
    pending: u64,
    pending_hits: u64,
}

impl ShardHandle {
    /// Delivers everything recorded since the last flush: buffered
    /// captures into their shards, local counters into the home shard.
    pub fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        if !self.buf.is_empty() {
            if self.inner.shards.len() == 1 {
                let mut stats = self.inner.shards[0].lock().expect("shard poisoned");
                for capture in self.buf.drain(..) {
                    stats.insert_unique(capture);
                }
            } else {
                // Group by shard so each lock is taken at most once.
                let mut routed: Vec<(usize, Capture)> = self
                    .buf
                    .drain(..)
                    .map(|c| ((route_hash(&c) & self.inner.mask) as usize, c))
                    .collect();
                routed.sort_by_key(|&(shard, _)| shard);
                let mut iter = routed.into_iter().peekable();
                while let Some((shard, capture)) = iter.next() {
                    let mut stats = self.inner.shards[shard].lock().expect("shard poisoned");
                    stats.insert_unique(capture);
                    while let Some((_, c)) = iter.next_if(|&(s, _)| s == shard) {
                        stats.insert_unique(c);
                    }
                }
            }
        }
        let counters = std::mem::take(&mut self.local);
        self.inner.shards[self.home]
            .lock()
            .expect("shard poisoned")
            .merge(counters);
        self.inner.flushes.fetch_add(1, Ordering::Relaxed);
        self.inner.events.fetch_add(self.pending, Ordering::Relaxed);
        self.inner
            .memo_hits
            .fetch_add(self.pending_hits, Ordering::Relaxed);
        self.pending = 0;
        self.pending_hits = 0;
    }

    /// Memo lookup/registration: returns the capture's derived values and
    /// schedules its delivery if this handle has not forwarded it before.
    fn note(&mut self, capture: Capture) -> Option<(usize, usize, u64)> {
        let key = MemoKey(capture);
        if let Some(&derived) = self.memo.get(&key) {
            self.pending_hits += 1;
            return derived; // `key` (the repeated capture) drops here
        }
        let derived = delta_parts(&key.0);
        self.buf.push(key.0.clone());
        if self.memo.len() < MEMO_CAPACITY {
            self.memo.insert(key, derived);
        }
        derived
    }

    fn bump(&mut self) {
        self.pending += 1;
        if self.pending >= self.inner.batch as u64 {
            self.flush();
        }
    }
}

impl Collector for ShardHandle {
    fn record_entry(&mut self, method: MethodId, true_depth: usize, capture: Capture) {
        if self.inner.batch == 1 {
            let shard = self.inner.shard_of(&capture);
            self.inner.shards[shard]
                .lock()
                .expect("shard poisoned")
                .record_entry(method, true_depth, capture);
            self.inner.flushes.fetch_add(1, Ordering::Relaxed);
            self.inner.events.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let derived = self.note(capture);
        self.local.absorb_counts(true_depth, derived);
        self.bump();
    }

    fn record_observe(&mut self, event: u32, method: MethodId, capture: Capture) {
        if self.inner.batch == 1 {
            let shard = self.inner.shard_of(&capture);
            self.inner.shards[shard]
                .lock()
                .expect("shard poisoned")
                .record_observe(event, method, capture);
            self.inner.flushes.fetch_add(1, Ordering::Relaxed);
            self.inner.events.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Observation points only contribute to the distinct set (exactly
        // like `ContextStats::record_observe`).
        self.note(capture);
        self.bump();
    }

    // report_telemetry: default no-op, on purpose — see
    // `ShardedCollector::report_telemetry`.
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_core::{EncodedContext, Frame, FrameTag};

    fn delta_capture(id: u64, depth: usize) -> Capture {
        let frame = Frame {
            tag: FrameTag::Anchor,
            node: MethodId::from_index(0),
            site: None,
            saved_id: 0,
        };
        Capture::Delta(EncodedContext {
            frames: vec![frame; depth],
            id,
            at: MethodId::from_index(1),
        })
    }

    fn assert_stats_eq(merged: &ContextStats, sequential: &ContextStats) {
        assert_eq!(merged.total_contexts, sequential.total_contexts);
        assert_eq!(merged.unique_contexts(), sequential.unique_contexts());
        assert_eq!(merged.max_depth, sequential.max_depth);
        assert_eq!(merged.max_stack_depth, sequential.max_stack_depth);
        assert_eq!(merged.max_ucp, sequential.max_ucp);
        assert_eq!(merged.max_id, sequential.max_id);
        assert!((merged.avg_depth() - sequential.avg_depth()).abs() < 1e-12);
        assert!((merged.avg_stack_depth() - sequential.avg_stack_depth()).abs() < 1e-12);
        assert!((merged.avg_ucp() - sequential.avg_ucp()).abs() < 1e-12);
    }

    fn drive(collector: &ShardedCollector) -> ContextStats {
        let mut sequential = ContextStats::new();
        let mut handle = collector.handle();
        for i in 0..200u64 {
            let capture = delta_capture(i % 10, (i % 5) as usize + 1);
            handle.record_entry(MethodId::from_index(2), (i % 7) as usize, capture.clone());
            sequential.record_entry(MethodId::from_index(2), (i % 7) as usize, capture);
        }
        handle.record_observe(3, MethodId::from_index(2), delta_capture(99, 2));
        sequential.record_observe(3, MethodId::from_index(2), delta_capture(99, 2));
        drop(handle); // flushes the tail
        sequential
    }

    #[test]
    fn merged_shards_match_sequential_stats() {
        let sharded = ShardedCollector::with_config(8, 4);
        let sequential = drive(&sharded);
        assert_stats_eq(&sharded.stats(), &sequential);
        assert_eq!(sharded.events(), 201);
        assert!(sharded.flushes() >= 50);
        // 200 entries over 10 distinct captures + 1 distinct observe:
        // everything after the first occurrence is a memo hit.
        assert_eq!(sharded.memo_hits(), 190);
    }

    #[test]
    fn unbuffered_mode_matches_sequential_stats() {
        let sharded = ShardedCollector::single_shard();
        let sequential = drive(&sharded);
        assert_stats_eq(&sharded.stats(), &sequential);
        assert_eq!(sharded.events(), 201);
        assert_eq!(sharded.flushes(), 201);
        assert_eq!(sharded.memo_hits(), 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedCollector::with_config(0, 0).shard_count(), 1);
        assert_eq!(ShardedCollector::with_config(5, 1).shard_count(), 8);
        assert_eq!(ShardedCollector::single_shard().shard_count(), 1);
        assert_eq!(ShardedCollector::single_shard().batch_size(), 1);
    }

    #[test]
    fn equal_captures_share_a_shard_and_projection() {
        let sharded = ShardedCollector::with_config(16, 8);
        let a = delta_capture(7, 3);
        let b = delta_capture(7, 3);
        assert_eq!(sharded.inner.shard_of(&a), sharded.inner.shard_of(&b));
        assert_eq!(route_hash(&a), route_hash(&b));
    }
}
