//! The batched DeltaPath encoder.
//!
//! [`BatchedDeltaEncoder`] is operationally identical to
//! [`CompiledDeltaEncoder`](crate::CompiledDeltaEncoder) — same captures,
//! same op counts, same UCP detections, pinned by the `batched_encoder`
//! differential suite — but instead of resolving and applying each hook as
//! it arrives, it packs hooks into [`HookWord`]s in a buffer and pushes
//! whole *slices* through the branchless batch kernel
//! ([`CompiledPlan::apply_batch`]) when the buffer fills. The per-hook
//! cost on the buffering side is one packed store; the kernel side applies
//! the fused action words with mask arithmetic in a tight loop.
//!
//! Flush points keep the observable state exact where it matters:
//!
//! * `observe` flushes before snapshotting, so every capture reflects all
//!   preceding hooks;
//! * a return that closes the outermost open call flushes, so the state
//!   (and the op counts) are exact at every top-level statement boundary —
//!   in particular at the end of a VM run, where telemetry is reported;
//! * `thread_start` flushes the previous thread's tail before resetting.
//!
//! Replay harnesses that truncate hook streams mid-call should call
//! [`BatchedDeltaEncoder::flush`] before reading counts or state.

use std::sync::Arc;

use deltapath_core::{BatchState, CompiledPlan, EncodedContext, HookWord};
use deltapath_ir::{MethodId, SiteId};
use deltapath_telemetry::{names, Log2Histogram, Recorder, Telemetry};

use crate::encoder::{report_op_counts, Capture, ContextEncoder, OpCounts};

/// Default buffer capacity in hook words. Large enough that the kernel's
/// per-batch setup amortizes away, small enough that a batch stays in L1
/// (the `encoder_hotpath` sweep measures 64/256/1024).
pub const DEFAULT_BATCH_CAPACITY: usize = 256;

/// DeltaPath over buffered hook words and the batch kernel (see the
/// module docs).
#[derive(Debug)]
pub struct BatchedDeltaEncoder<'p> {
    compiled: &'p CompiledPlan,
    state: BatchState,
    buf: Vec<HookWord>,
    capacity: usize,
    /// Captures produced by observe words during a flush; drained by
    /// `observe` immediately, so the vec never holds more than one.
    captures: Vec<EncodedContext>,
    /// Open (un-returned) `on_call` hooks; a return closing the outermost
    /// call flushes the buffer.
    call_depth: usize,
    flushes: u64,
    hooks: u64,
    batch_len_hist: Option<Arc<Log2Histogram>>,
}

impl<'p> BatchedDeltaEncoder<'p> {
    /// Creates an encoder over `compiled` with the default buffer
    /// capacity.
    pub fn new(compiled: &'p CompiledPlan) -> Self {
        Self {
            compiled,
            state: BatchState::start(compiled.entry_method()),
            buf: Vec::with_capacity(DEFAULT_BATCH_CAPACITY),
            capacity: DEFAULT_BATCH_CAPACITY,
            captures: Vec::new(),
            call_depth: 0,
            flushes: 0,
            hooks: 0,
            batch_len_hist: None,
        }
    }

    /// Sets the buffer capacity in hook words (clamped to ≥ 1; 1 degrades
    /// to hook-at-a-time kernel calls — still exact, pinned by the
    /// chunking property test).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self.buf
            .reserve(self.capacity.saturating_sub(self.buf.capacity()));
        self
    }

    /// Pre-resolves the `encoder.batched.batch_len` histogram from
    /// `recorder` and stamps the capacity gauge, so every flush records
    /// its batch length (one histogram record per *flush*, not per hook —
    /// off the hot path by construction).
    pub fn with_batch_telemetry(mut self, recorder: &Recorder) -> Self {
        recorder
            .gauge(names::ENCODER_BATCHED_CAPACITY)
            .observe(self.capacity as u64);
        self.batch_len_hist = Some(recorder.histogram(names::ENCODER_BATCHED_BATCH_LEN));
        self
    }

    /// The configured buffer capacity in hook words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes the buffered hook words through the batch kernel. A no-op on
    /// an empty buffer.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.flushes += 1;
        self.hooks += self.buf.len() as u64;
        if let Some(hist) = &self.batch_len_hist {
            hist.record(self.buf.len() as u64);
        }
        self.compiled
            .apply_batch(&mut self.state, &self.buf, &mut self.captures);
        self.buf.clear();
    }

    #[inline(always)]
    fn push(&mut self, word: HookWord) {
        self.buf.push(word);
        if self.buf.len() >= self.capacity {
            self.flush();
        }
    }

    /// The underlying tables.
    pub fn compiled(&self) -> &'p CompiledPlan {
        self.compiled
    }

    /// The current batch-engine state (exact after a
    /// [`flush`](Self::flush)).
    pub fn state(&self) -> &BatchState {
        &self.state
    }

    /// The deepest the encoding stack has grown (lifetime high-water mark,
    /// not reset by [`thread_start`](ContextEncoder::thread_start)).
    pub fn stack_high_water(&self) -> usize {
        self.state.counts().stack_hwm as usize
    }

    /// Number of hazardous unexpected call paths detected.
    pub fn ucp_detections(&self) -> u64 {
        self.state.counts().ucp_detections
    }

    /// Buffer flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

impl ContextEncoder for BatchedDeltaEncoder<'_> {
    type CallToken = ();
    type EntryToken = ();

    fn thread_start(&mut self, entry: MethodId) {
        self.flush();
        self.state.restart(entry);
        self.call_depth = 0;
    }

    #[inline]
    fn on_call(&mut self, site: SiteId) {
        self.call_depth += 1;
        self.push(HookWord::call(site));
    }

    #[inline]
    fn on_return(&mut self, _site: SiteId, _token: ()) {
        self.push(HookWord::ret());
        self.call_depth = self.call_depth.saturating_sub(1);
        if self.call_depth == 0 {
            self.flush();
        }
    }

    #[inline]
    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) {
        self.push(HookWord::entry(method, via_site));
    }

    #[inline]
    fn on_exit(&mut self, method: MethodId, _token: ()) {
        self.push(HookWord::exit(method));
    }

    fn observe(&mut self, at: MethodId) -> Capture {
        self.push(HookWord::observe(at));
        self.flush();
        let ctx = self
            .captures
            .pop()
            .expect("the observe word just flushed produces a capture");
        debug_assert!(self.captures.is_empty(), "at most one buffered observe");
        Capture::Delta(ctx)
    }

    fn counts(&self) -> OpCounts {
        let c = self.state.counts();
        OpCounts {
            adds: c.adds,
            subs: c.subs,
            pending_saves: c.pending_saves,
            sid_checks: c.sid_checks,
            pushes: c.pushes,
            pops: c.pops,
            ..OpCounts::default()
        }
    }

    fn name(&self) -> &'static str {
        if self.compiled.cpt() {
            "batched"
        } else {
            "batched-nocpt"
        }
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        let name = self.name();
        let c = self.state.counts();
        report_op_counts(sink, name, &self.counts());
        sink.gauge_max(&format!("encoder.{name}.stack_hwm"), c.stack_hwm);
        sink.counter_add(&format!("encoder.{name}.ucp_detections"), c.ucp_detections);
        sink.counter_add(
            &format!("encoder.{name}.push_pop_imbalance"),
            c.pushes.saturating_sub(c.pops),
        );
        sink.gauge_max(
            &format!("encoder.{name}.table_bytes"),
            self.compiled.table_bytes() as u64,
        );
        sink.counter_add(names::ENCODER_BATCHED_FLUSHES, self.flushes);
        sink.counter_add(names::ENCODER_BATCHED_HOOKS, self.hooks);
        sink.gauge_max(names::ENCODER_BATCHED_CAPACITY, self.capacity as u64);
        sink.gauge_max(
            names::ENCODER_BACKEDGE_PAIRS,
            self.compiled.back_edge_pair_count() as u64,
        );
        sink.gauge_max(
            names::ENCODER_BACKEDGE_SITES,
            self.compiled.back_edge_site_count() as u64,
        );
        sink.counter_add(names::ENCODER_BACKEDGE_PROBES, c.backedge_probes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledDeltaEncoder;
    use deltapath_core::{EncodingPlan, PlanConfig};
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("batched-enc");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "leaf");
                f.call(c, "leaf");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn mirrors_compiled_encoder_hook_for_hook() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let mut scalar = CompiledDeltaEncoder::new(&compiled);
        let mut batched = BatchedDeltaEncoder::new(&compiled).with_capacity(3);
        let main = p.entry();
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        let site = p.sites().iter().find(|s| s.caller() == main).unwrap().id();
        scalar.thread_start(main);
        batched.thread_start(main);
        for _ in 0..5 {
            let ts = scalar.on_call(site);
            batched.on_call(site);
            let es = scalar.on_entry(leaf, Some(site));
            batched.on_entry(leaf, Some(site));
            assert_eq!(scalar.observe(leaf), batched.observe(leaf));
            scalar.on_exit(leaf, es);
            batched.on_exit(leaf, ());
            scalar.on_return(site, ts);
            batched.on_return(site, ());
        }
        batched.flush();
        assert_eq!(scalar.counts(), batched.counts());
        assert_eq!(scalar.state().id(), batched.state().id());
        assert_eq!(scalar.ucp_detections(), batched.ucp_detections());
        assert!(batched.flushes() > 0);
    }

    #[test]
    fn names_reflect_cpt_mode() {
        let p = program();
        let on = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let off = EncodingPlan::analyze(&p, &PlanConfig::default().with_cpt(false)).unwrap();
        let (con, coff) = (on.compile(), off.compile());
        assert_eq!(BatchedDeltaEncoder::new(&con).name(), "batched");
        assert_eq!(BatchedDeltaEncoder::new(&coff).name(), "batched-nocpt");
    }

    #[test]
    fn telemetry_reports_fixed_batch_names() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let recorder = Recorder::new();
        let mut e = BatchedDeltaEncoder::new(&compiled)
            .with_capacity(4)
            .with_batch_telemetry(&recorder);
        e.thread_start(p.entry());
        let main = p.entry();
        let site = p.sites().iter().find(|s| s.caller() == main).unwrap().id();
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        for _ in 0..4 {
            e.on_call(site);
            e.on_entry(leaf, Some(site));
            e.on_exit(leaf, ());
            e.on_return(site, ());
        }
        e.flush();
        e.report_telemetry(&recorder);
        let report = recorder.report("t");
        assert_eq!(report.counter(names::ENCODER_BATCHED_HOOKS), Some(16));
        assert!(report.counter(names::ENCODER_BATCHED_FLUSHES).unwrap() > 0);
        assert!(recorder.histogram(names::ENCODER_BATCHED_BATCH_LEN).count() > 0);
        assert_eq!(
            recorder.gauge(names::ENCODER_BATCHED_CAPACITY).get(),
            4,
            "capacity stamped as gauge"
        );
        for (name, _) in &report.counters {
            assert!(
                deltapath_telemetry::names::is_registered(name),
                "unregistered metric {name}"
            );
        }
    }
}
