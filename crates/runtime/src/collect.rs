//! Collection of captured contexts and dynamic statistics.

use std::collections::HashSet;

use deltapath_core::RelativeLog;
use deltapath_ir::MethodId;
use deltapath_telemetry::{names, Telemetry};

use crate::encoder::Capture;

/// Receives captured contexts during a run.
pub trait Collector {
    /// Called at the entry of every collected method (see
    /// [`CollectMode`](crate::CollectMode)); `true_depth` is the number of
    /// in-scope frames on the interpreter's real call stack.
    fn record_entry(&mut self, method: MethodId, true_depth: usize, capture: Capture);

    /// Called at every `Observe` statement.
    fn record_observe(&mut self, event: u32, method: MethodId, capture: Capture);

    /// Reports this collector's metrics into `sink`. The VM calls this
    /// once at the end of a run when telemetry is enabled; the default
    /// reports nothing.
    fn report_telemetry(&self, sink: &dyn Telemetry) {
        let _ = sink;
    }
}

/// A collector that drops everything (for pure overhead measurements).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record_entry(&mut self, _method: MethodId, _true_depth: usize, _capture: Capture) {}
    fn record_observe(&mut self, _event: u32, _method: MethodId, _capture: Capture) {}
}

/// A collector that stores observed events verbatim (for the logging /
/// decoding examples and tests).
///
/// By default the log grows without bound. [`EventLog::bounded`] caps it:
/// once `capacity` events are stored, further observations are counted in
/// [`dropped`](EventLog::dropped) instead of stored (the *earliest* events
/// are the ones kept — a decode log wants the run's head, unlike the
/// flight-recorder tail kept by `deltapath_telemetry::EventTrace`).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    /// `(event label, method, capture)` triples in observation order.
    pub events: Vec<(u32, MethodId, Capture)>,
    capacity: Option<usize>,
    dropped: u64,
}

impl EventLog {
    /// An event log that stores at most `capacity` events.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Number of observations discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Collector for EventLog {
    fn record_entry(&mut self, _method: MethodId, _true_depth: usize, _capture: Capture) {}

    fn record_observe(&mut self, event: u32, method: MethodId, capture: Capture) {
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push((event, method, capture));
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        sink.counter_add(
            names::COLLECTOR_EVENT_LOG_RECORDED,
            self.events.len() as u64,
        );
        sink.counter_add(names::COLLECTOR_EVENT_LOG_DROPPED, self.dropped);
        // The collector-neutral name external tooling keys on; the
        // `event_log.*` name above is kept for continuity.
        sink.counter_add(names::COLLECTOR_EVENTS_DROPPED, self.dropped);
    }
}

/// A collector that stores DeltaPath captures delta-compressed in a
/// [`RelativeLog`] (the paper's Section 8 relative encoding): successive
/// contexts share most of their stack, so the log stores only the new
/// frames of each.
#[derive(Clone, Debug, Default)]
pub struct RelativeCollector {
    /// The compressed log of entry captures.
    pub log: RelativeLog,
    /// Captures that were not DeltaPath contexts (and were dropped).
    pub skipped: u64,
}

impl Collector for RelativeCollector {
    fn record_entry(&mut self, _method: MethodId, _true_depth: usize, capture: Capture) {
        match capture {
            Capture::Delta(ctx) => self.log.push(&ctx),
            _ => self.skipped += 1,
        }
    }

    fn record_observe(&mut self, _event: u32, _method: MethodId, capture: Capture) {
        if let Capture::Delta(ctx) = capture {
            self.log.push(&ctx);
        }
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        sink.counter_add(names::COLLECTOR_RELATIVE_CONTEXTS, self.log.len() as u64);
        sink.counter_add(
            names::COLLECTOR_RELATIVE_FRAMES_STORED,
            self.log.frames_stored() as u64,
        );
        sink.counter_add(
            names::COLLECTOR_RELATIVE_FRAMES_RAW,
            self.log.frames_raw() as u64,
        );
        sink.counter_add(names::COLLECTOR_RELATIVE_SKIPPED, self.skipped);
    }
}

/// Streaming statistics over entry captures: the paper's Table 2 columns.
#[derive(Clone, Debug, Default)]
pub struct ContextStats {
    /// Total number of collected calling contexts.
    pub total_contexts: u64,
    /// Maximum true context depth (number of in-scope active methods).
    pub max_depth: usize,
    /// Sum of true depths (for the average).
    depth_sum: u64,
    /// Distinct captured values.
    unique: HashSet<Capture>,
    /// Maximum DeltaPath stack depth observed.
    pub max_stack_depth: usize,
    /// Sum of DeltaPath stack depths.
    stack_depth_sum: u64,
    /// Maximum hazardous-UCP count in one context.
    pub max_ucp: usize,
    /// Sum of per-context UCP counts.
    ucp_sum: u64,
    /// Maximum dynamic encoding ID observed.
    pub max_id: u64,
}

impl ContextStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct captured values.
    pub fn unique_contexts(&self) -> usize {
        self.unique.len()
    }

    /// Average true context depth.
    pub fn avg_depth(&self) -> f64 {
        if self.total_contexts == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.total_contexts as f64
        }
    }

    /// Average DeltaPath stack depth.
    pub fn avg_stack_depth(&self) -> f64 {
        if self.total_contexts == 0 {
            0.0
        } else {
            self.stack_depth_sum as f64 / self.total_contexts as f64
        }
    }

    /// Average hazardous-UCP count per context.
    pub fn avg_ucp(&self) -> f64 {
        if self.total_contexts == 0 {
            0.0
        } else {
            self.ucp_sum as f64 / self.total_contexts as f64
        }
    }

    /// Folds `other` into `self`, as if every capture recorded into
    /// `other` had been recorded here instead. Counters and sums add,
    /// maxima take the max, and the distinct-capture sets union — so the
    /// merge is lossless and order-independent, which is what lets
    /// [`ShardedCollector`](crate::ShardedCollector) keep per-shard stats
    /// and still report the exact sequential `ContextStats`.
    pub fn merge(&mut self, other: ContextStats) {
        self.total_contexts += other.total_contexts;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.depth_sum += other.depth_sum;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.stack_depth_sum += other.stack_depth_sum;
        self.max_ucp = self.max_ucp.max(other.max_ucp);
        self.ucp_sum += other.ucp_sum;
        self.max_id = self.max_id.max(other.max_id);
        if self.unique.is_empty() {
            self.unique = other.unique;
        } else {
            self.unique.extend(other.unique);
        }
    }

    fn absorb(&mut self, true_depth: usize, capture: Capture) {
        self.absorb_counts(true_depth, delta_parts(&capture));
        self.unique.insert(capture);
    }

    /// The counter-only half of [`absorb`](Self::absorb): everything
    /// except the distinct-capture set. `delta` carries the
    /// capture-derived values from [`delta_parts`] — splitting them out
    /// lets [`ShardHandle`](crate::ShardHandle) accumulate counters
    /// thread-locally and reuse the derived values of a memoized capture.
    pub(crate) fn absorb_counts(&mut self, true_depth: usize, delta: Option<(usize, usize, u64)>) {
        self.total_contexts += 1;
        self.max_depth = self.max_depth.max(true_depth);
        self.depth_sum += true_depth as u64;
        if let Some((stack_depth, ucp, id)) = delta {
            self.max_stack_depth = self.max_stack_depth.max(stack_depth);
            self.stack_depth_sum += stack_depth as u64;
            self.max_ucp = self.max_ucp.max(ucp);
            self.ucp_sum += ucp as u64;
            self.max_id = self.max_id.max(id);
        }
    }

    /// Adds `capture` to the distinct set without touching counters.
    pub(crate) fn insert_unique(&mut self, capture: Capture) {
        self.unique.insert(capture);
    }
}

/// `(stack depth, UCP count, id)` of a DeltaPath capture, `None` for every
/// other capture kind — the exact values [`ContextStats::absorb_counts`]
/// folds in.
pub(crate) fn delta_parts(capture: &Capture) -> Option<(usize, usize, u64)> {
    match capture {
        Capture::Delta(ctx) => Some((ctx.depth(), ctx.ucp_count(), ctx.id)),
        _ => None,
    }
}

impl Collector for ContextStats {
    fn record_entry(&mut self, _method: MethodId, true_depth: usize, capture: Capture) {
        self.absorb(true_depth, capture);
    }

    fn record_observe(&mut self, _event: u32, _method: MethodId, capture: Capture) {
        // Observation points contribute to uniqueness too, with unknown
        // depth attribution left to entry records.
        self.unique.insert(capture);
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        sink.counter_add(names::COLLECTOR_STATS_CONTEXTS, self.total_contexts);
        sink.counter_add(names::COLLECTOR_STATS_UNIQUE, self.unique_contexts() as u64);
        sink.gauge_max(names::COLLECTOR_STATS_MAX_DEPTH, self.max_depth as u64);
        sink.gauge_max(
            names::COLLECTOR_STATS_MAX_STACK_DEPTH,
            self.max_stack_depth as u64,
        );
        sink.gauge_max(names::COLLECTOR_STATS_MAX_UCP, self.max_ucp as u64);
        sink.gauge_max(names::COLLECTOR_STATS_MAX_ID, self.max_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_core::{EncodedContext, Frame, FrameTag};

    fn delta_capture(id: u64, depth: usize) -> Capture {
        let frame = Frame {
            tag: FrameTag::Anchor,
            node: MethodId::from_index(0),
            site: None,
            saved_id: 0,
        };
        Capture::Delta(EncodedContext {
            frames: vec![frame; depth],
            id,
            at: MethodId::from_index(1),
        })
    }

    #[test]
    fn stats_accumulate() {
        let mut s = ContextStats::new();
        s.record_entry(MethodId::from_index(1), 3, delta_capture(5, 1));
        s.record_entry(MethodId::from_index(1), 5, delta_capture(9, 2));
        s.record_entry(MethodId::from_index(1), 4, delta_capture(5, 1)); // duplicate capture
        assert_eq!(s.total_contexts, 3);
        assert_eq!(s.unique_contexts(), 2);
        assert_eq!(s.max_depth, 5);
        assert!((s.avg_depth() - 4.0).abs() < 1e-9);
        assert_eq!(s.max_stack_depth, 2);
        assert_eq!(s.max_id, 9);
    }

    #[test]
    fn relative_collector_compresses_and_roundtrips() {
        let mut c = RelativeCollector::default();
        for id in 0..50 {
            c.record_entry(MethodId::from_index(1), 2, delta_capture(id, 3));
        }
        c.record_entry(MethodId::from_index(1), 2, Capture::Pcc(1));
        assert_eq!(c.log.len(), 50);
        assert_eq!(c.skipped, 1);
        // All 50 share the same 3-frame stack: stored once.
        assert_eq!(c.log.frames_stored(), 3);
        assert_eq!(c.log.frames_raw(), 150);
        let expanded: Vec<_> = c.log.expand().collect();
        assert_eq!(expanded.len(), 50);
        assert_eq!(expanded[49].id, 49);
    }

    #[test]
    fn event_log_records_observes_only() {
        let mut log = EventLog::default();
        log.record_entry(MethodId::from_index(0), 1, Capture::Pcc(1));
        log.record_observe(7, MethodId::from_index(0), Capture::Pcc(2));
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].0, 7);
    }
}
