//! The table-driven DeltaPath encoder.
//!
//! [`CompiledDeltaEncoder`] is operationally identical to
//! [`DeltaEncoder`](crate::DeltaEncoder) — same captures, same op counts,
//! same UCP detections, pinned by the differential suite — but resolves
//! every hook through a [`CompiledPlan`]'s dense tables instead of the
//! plan's hash maps: one bounds-checked array load per hook, zero hashing.
//! The return hook consults no table at all; the
//! [`CallToken`](deltapath_core::CallToken) produced at the call carries
//! the resolved instruction across.
//!
//! The map-based encoder stays as the reference oracle; this one is what a
//! deployment would run.

use deltapath_core::{CompiledPlan, DeltaState, EntryOutcome};
use deltapath_ir::{MethodId, SiteId};
use deltapath_telemetry::Telemetry;

use crate::encoder::{report_op_counts, Capture, ContextEncoder, OpCounts};

/// DeltaPath over compiled dispatch tables (see the module docs).
#[derive(Debug)]
pub struct CompiledDeltaEncoder<'p> {
    compiled: &'p CompiledPlan,
    state: DeltaState,
    counts: OpCounts,
    stack_hwm: usize,
    ucp_detections: u64,
}

impl<'p> CompiledDeltaEncoder<'p> {
    /// Creates an encoder over `compiled`. The state is initialized lazily
    /// by [`thread_start`](ContextEncoder::thread_start).
    pub fn new(compiled: &'p CompiledPlan) -> Self {
        Self {
            compiled,
            state: DeltaState::start(compiled.entry_method()),
            counts: OpCounts::default(),
            stack_hwm: 0,
            ucp_detections: 0,
        }
    }

    /// The underlying tables.
    pub fn compiled(&self) -> &'p CompiledPlan {
        self.compiled
    }

    /// The current encoding state.
    pub fn state(&self) -> &DeltaState {
        &self.state
    }

    /// The deepest the encoding stack has grown (lifetime high-water mark,
    /// not reset by [`thread_start`](ContextEncoder::thread_start)).
    pub fn stack_high_water(&self) -> usize {
        self.stack_hwm
    }

    /// Number of hazardous unexpected call paths detected.
    pub fn ucp_detections(&self) -> u64 {
        self.ucp_detections
    }
}

impl ContextEncoder for CompiledDeltaEncoder<'_> {
    type CallToken = Option<deltapath_core::CallToken>;
    type EntryToken = EntryOutcome;

    fn thread_start(&mut self, entry: MethodId) {
        self.state = DeltaState::start(entry);
    }

    #[inline]
    fn on_call(&mut self, site: SiteId) -> Self::CallToken {
        let w = self.compiled.site(site);
        if !w.present() {
            return None;
        }
        self.counts.adds += u64::from(w.encoded());
        self.counts.pending_saves += u64::from(w.save_pending());
        Some(self.state.on_call_resolved(site, w.resolved()))
    }

    #[inline]
    fn on_return(&mut self, _site: SiteId, token: Self::CallToken) {
        let Some(token) = token else { return };
        self.counts.subs += u64::from(token.encoded());
        self.state.on_return(token);
    }

    #[inline]
    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> EntryOutcome {
        let e = self.compiled.entry(method);
        if !e.present() {
            return EntryOutcome::Plain;
        }
        self.counts.sid_checks += u64::from(e.do_check());
        // Only instrumented dispatching sites count as "via"; the back-edge
        // pair search runs only for the rare site that can take one.
        let (via, back_edge) = match via_site {
            Some(s) => {
                let w = self.compiled.site(s);
                if w.present() {
                    let back = w.may_take_back_edge() && self.compiled.is_back_edge_call(s, method);
                    (Some(s), back)
                } else {
                    (None, false)
                }
            }
            None => (None, false),
        };
        let outcome = self
            .state
            .on_entry_resolved(method, via, e.resolved(back_edge));
        if outcome.pushed() {
            self.counts.pushes += 1;
            self.stack_hwm = self.stack_hwm.max(self.state.depth());
            if outcome == EntryOutcome::PushedUcp {
                self.ucp_detections += 1;
            }
        }
        outcome
    }

    #[inline]
    fn on_exit(&mut self, _method: MethodId, token: EntryOutcome) {
        if token.pushed() {
            self.counts.pops += 1;
        }
        self.state.on_exit(token);
    }

    fn observe(&mut self, at: MethodId) -> Capture {
        Capture::Delta(self.state.snapshot(at))
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        if self.compiled.cpt() {
            "compiled"
        } else {
            "compiled-nocpt"
        }
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        let name = self.name();
        report_op_counts(sink, name, &self.counts);
        sink.gauge_max(&format!("encoder.{name}.stack_hwm"), self.stack_hwm as u64);
        sink.counter_add(
            &format!("encoder.{name}.ucp_detections"),
            self.ucp_detections,
        );
        sink.counter_add(
            &format!("encoder.{name}.push_pop_imbalance"),
            self.counts.pushes.saturating_sub(self.counts.pops),
        );
        sink.gauge_max(
            &format!("encoder.{name}.table_bytes"),
            self.compiled.table_bytes() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoders::DeltaEncoder;
    use deltapath_core::{EncodingPlan, PlanConfig};
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("compiled-enc");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "leaf");
                f.call(c, "leaf");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn mirrors_map_based_encoder_hook_for_hook() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let mut map = DeltaEncoder::new(&plan);
        let mut tab = CompiledDeltaEncoder::new(&compiled);
        let main = p.entry();
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        let site = p.sites().iter().find(|s| s.caller() == main).unwrap().id();
        map.thread_start(main);
        tab.thread_start(main);
        let tm = map.on_call(site);
        let tc = tab.on_call(site);
        let em = map.on_entry(leaf, Some(site));
        let ec = tab.on_entry(leaf, Some(site));
        assert_eq!(em, ec);
        assert_eq!(map.observe(leaf), tab.observe(leaf));
        map.on_exit(leaf, em);
        tab.on_exit(leaf, ec);
        map.on_return(site, tm);
        tab.on_return(site, tc);
        assert_eq!(map.counts(), tab.counts());
        assert_eq!(map.state().id(), tab.state().id());
    }

    #[test]
    fn names_reflect_cpt_mode() {
        let p = program();
        let on = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let off = EncodingPlan::analyze(&p, &PlanConfig::default().with_cpt(false)).unwrap();
        let (con, coff) = (on.compile(), off.compile());
        assert_eq!(CompiledDeltaEncoder::new(&con).name(), "compiled");
        assert_eq!(CompiledDeltaEncoder::new(&coff).name(), "compiled-nocpt");
    }

    #[test]
    fn uninstrumented_points_are_no_ops() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let mut e = CompiledDeltaEncoder::new(&compiled);
        e.thread_start(p.entry());
        let bogus_site = SiteId::from_index(4_096);
        let bogus_method = MethodId::from_index(4_096);
        let t = e.on_call(bogus_site);
        assert!(t.is_none());
        assert_eq!(e.on_entry(bogus_method, None), EntryOutcome::Plain);
        e.on_return(bogus_site, t);
        assert_eq!(e.counts(), OpCounts::default());
        assert_eq!(e.state().id(), 0);
    }
}
