//! The table-driven DeltaPath encoder.
//!
//! [`CompiledDeltaEncoder`] is operationally identical to
//! [`DeltaEncoder`](crate::DeltaEncoder) — same captures, same op counts,
//! same UCP detections, pinned by the differential suite — but resolves
//! every hook through a [`CompiledPlan`]'s dense tables instead of the
//! plan's hash maps: one bounds-checked array load per hook, zero hashing.
//! The return hook consults no table at all; the
//! [`CallToken`](deltapath_core::CallToken) produced at the call carries
//! the resolved instruction across.
//!
//! The map-based encoder stays as the reference oracle; this one is what a
//! deployment would run.

use std::sync::Arc;
use std::time::Instant;

use deltapath_core::{CompiledPlan, DeltaState, EntryOutcome};
use deltapath_ir::{MethodId, SiteId};
use deltapath_telemetry::{names, Counter, Log2Histogram, Recorder, Telemetry};

use crate::encoder::{report_op_counts, Capture, ContextEncoder, OpCounts};

/// 1-in-N latency sampling for the compiled encoder's hooks.
///
/// The hot path must stay one array load per hook, so per-hook clock reads
/// are out of the question. The sampler keeps a countdown; only every
/// `period`-th hook reads the clock (twice) and records the elapsed time
/// into the pre-resolved `profile.hook_ns` histogram — pre-resolved,
/// because a name lookup or `dyn` dispatch per sample would dominate what
/// is being measured. All other hooks pay one decrement and one branch.
///
/// The measured budget lives in `results/BENCH_telemetry_overhead.json`:
/// sampled recording must stay within 5% of the `NullTelemetry` hook
/// throughput (enforced by `telemetry_overhead --smoke` in CI).
#[derive(Debug)]
pub struct HookSampler {
    period: u32,
    countdown: u32,
    pending: Option<Instant>,
    hist: Arc<Log2Histogram>,
    samples: Arc<Counter>,
}

impl HookSampler {
    /// A sampler recording every `period`-th hook (clamped to ≥ 1) into
    /// `recorder`'s `profile.hook_ns` histogram and `profile.hook_samples`
    /// counter; the configured period is stamped into the
    /// `profile.hook_period` gauge.
    pub fn new(recorder: &Recorder, period: u32) -> Self {
        let period = period.max(1);
        recorder
            .gauge(names::PROFILE_HOOK_PERIOD)
            .observe(u64::from(period));
        Self {
            period,
            countdown: period,
            pending: None,
            hist: recorder.histogram(names::PROFILE_HOOK_NS),
            samples: recorder.counter(names::PROFILE_HOOK_SAMPLES),
        }
    }

    /// The configured sampling period N.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples.get()
    }

    /// Hook prologue: one decrement and one (almost always untaken) branch.
    #[inline(always)]
    fn begin(&mut self) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.arm();
        }
    }

    /// Hook epilogue: one load and one (almost always untaken) branch.
    #[inline(always)]
    fn end(&mut self) {
        if self.pending.is_some() {
            self.flush();
        }
    }

    #[cold]
    fn arm(&mut self) {
        self.countdown = self.period;
        self.pending = Some(Instant::now());
    }

    #[cold]
    fn flush(&mut self) {
        if let Some(started) = self.pending.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
            self.samples.add(1);
        }
    }
}

/// DeltaPath over compiled dispatch tables (see the module docs).
#[derive(Debug)]
pub struct CompiledDeltaEncoder<'p> {
    compiled: &'p CompiledPlan,
    state: DeltaState,
    counts: OpCounts,
    stack_hwm: usize,
    ucp_detections: u64,
    sampler: Option<HookSampler>,
}

impl<'p> CompiledDeltaEncoder<'p> {
    /// Creates an encoder over `compiled`. The state is initialized lazily
    /// by [`thread_start`](ContextEncoder::thread_start).
    pub fn new(compiled: &'p CompiledPlan) -> Self {
        Self {
            compiled,
            state: DeltaState::start(compiled.entry_method()),
            counts: OpCounts::default(),
            stack_hwm: 0,
            ucp_detections: 0,
            sampler: None,
        }
    }

    /// Attaches a [`HookSampler`]: every `period`-th hook is timed into
    /// `profile.hook_ns`. Without one (the default) the hooks pay no
    /// sampling cost at all beyond one branch on a `None`.
    pub fn with_hook_sampler(mut self, sampler: HookSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// The attached sampler, if any.
    pub fn hook_sampler(&self) -> Option<&HookSampler> {
        self.sampler.as_ref()
    }

    #[inline(always)]
    fn sample_start(&mut self) {
        if let Some(s) = &mut self.sampler {
            s.begin();
        }
    }

    #[inline(always)]
    fn sample_end(&mut self) {
        if let Some(s) = &mut self.sampler {
            s.end();
        }
    }

    #[inline]
    fn entry_hook(&mut self, method: MethodId, via_site: Option<SiteId>) -> EntryOutcome {
        let e = self.compiled.entry(method);
        if !e.present() {
            return EntryOutcome::Plain;
        }
        self.counts.sid_checks += u64::from(e.do_check());
        // Only instrumented dispatching sites count as "via"; the back-edge
        // pair search runs only for the rare site that can take one.
        let (via, back_edge) = match via_site {
            Some(s) => {
                let w = self.compiled.site(s);
                if w.present() {
                    let back = w.may_take_back_edge() && self.compiled.is_back_edge_call(s, method);
                    (Some(s), back)
                } else {
                    (None, false)
                }
            }
            None => (None, false),
        };
        let outcome = self
            .state
            .on_entry_resolved(method, via, e.resolved(back_edge));
        if outcome.pushed() {
            self.counts.pushes += 1;
            self.stack_hwm = self.stack_hwm.max(self.state.depth());
            if outcome == EntryOutcome::PushedUcp {
                self.ucp_detections += 1;
            }
        }
        outcome
    }

    /// The underlying tables.
    pub fn compiled(&self) -> &'p CompiledPlan {
        self.compiled
    }

    /// The current encoding state.
    pub fn state(&self) -> &DeltaState {
        &self.state
    }

    /// The deepest the encoding stack has grown (lifetime high-water mark,
    /// not reset by [`thread_start`](ContextEncoder::thread_start)).
    pub fn stack_high_water(&self) -> usize {
        self.stack_hwm
    }

    /// Number of hazardous unexpected call paths detected.
    pub fn ucp_detections(&self) -> u64 {
        self.ucp_detections
    }
}

impl ContextEncoder for CompiledDeltaEncoder<'_> {
    type CallToken = Option<deltapath_core::CallToken>;
    type EntryToken = EntryOutcome;

    fn thread_start(&mut self, entry: MethodId) {
        self.state = DeltaState::start(entry);
    }

    #[inline]
    fn on_call(&mut self, site: SiteId) -> Self::CallToken {
        self.sample_start();
        let w = self.compiled.site(site);
        let token = if w.present() {
            self.counts.adds += u64::from(w.encoded());
            self.counts.pending_saves += u64::from(w.save_pending());
            Some(self.state.on_call_resolved(site, w.resolved()))
        } else {
            None
        };
        self.sample_end();
        token
    }

    #[inline]
    fn on_return(&mut self, _site: SiteId, token: Self::CallToken) {
        self.sample_start();
        if let Some(token) = token {
            self.counts.subs += u64::from(token.encoded());
            self.state.on_return(token);
        }
        self.sample_end();
    }

    #[inline]
    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> EntryOutcome {
        self.sample_start();
        let outcome = self.entry_hook(method, via_site);
        self.sample_end();
        outcome
    }

    #[inline]
    fn on_exit(&mut self, _method: MethodId, token: EntryOutcome) {
        self.sample_start();
        if token.pushed() {
            self.counts.pops += 1;
        }
        self.state.on_exit(token);
        self.sample_end();
    }

    fn observe(&mut self, at: MethodId) -> Capture {
        Capture::Delta(self.state.snapshot(at))
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        if self.compiled.cpt() {
            "compiled"
        } else {
            "compiled-nocpt"
        }
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        let name = self.name();
        report_op_counts(sink, name, &self.counts);
        sink.gauge_max(&format!("encoder.{name}.stack_hwm"), self.stack_hwm as u64);
        sink.counter_add(
            &format!("encoder.{name}.ucp_detections"),
            self.ucp_detections,
        );
        sink.counter_add(
            &format!("encoder.{name}.push_pop_imbalance"),
            self.counts.pushes.saturating_sub(self.counts.pops),
        );
        sink.gauge_max(
            &format!("encoder.{name}.table_bytes"),
            self.compiled.table_bytes() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoders::DeltaEncoder;
    use deltapath_core::{EncodingPlan, PlanConfig};
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("compiled-enc");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static).finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "leaf");
                f.call(c, "leaf");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn mirrors_map_based_encoder_hook_for_hook() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let mut map = DeltaEncoder::new(&plan);
        let mut tab = CompiledDeltaEncoder::new(&compiled);
        let main = p.entry();
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        let site = p.sites().iter().find(|s| s.caller() == main).unwrap().id();
        map.thread_start(main);
        tab.thread_start(main);
        let tm = map.on_call(site);
        let tc = tab.on_call(site);
        let em = map.on_entry(leaf, Some(site));
        let ec = tab.on_entry(leaf, Some(site));
        assert_eq!(em, ec);
        assert_eq!(map.observe(leaf), tab.observe(leaf));
        map.on_exit(leaf, em);
        tab.on_exit(leaf, ec);
        map.on_return(site, tm);
        tab.on_return(site, tc);
        assert_eq!(map.counts(), tab.counts());
        assert_eq!(map.state().id(), tab.state().id());
    }

    #[test]
    fn names_reflect_cpt_mode() {
        let p = program();
        let on = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let off = EncodingPlan::analyze(&p, &PlanConfig::default().with_cpt(false)).unwrap();
        let (con, coff) = (on.compile(), off.compile());
        assert_eq!(CompiledDeltaEncoder::new(&con).name(), "compiled");
        assert_eq!(CompiledDeltaEncoder::new(&coff).name(), "compiled-nocpt");
    }

    #[test]
    fn hook_sampler_records_one_in_n() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let recorder = Recorder::new();
        let mut e =
            CompiledDeltaEncoder::new(&compiled).with_hook_sampler(HookSampler::new(&recorder, 4));
        e.thread_start(p.entry());
        let main = p.entry();
        let site = p.sites().iter().find(|s| s.caller() == main).unwrap().id();
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        for _ in 0..10 {
            let t = e.on_call(site);
            let en = e.on_entry(leaf, Some(site));
            e.on_exit(leaf, en);
            e.on_return(site, t);
        }
        // 40 hooks at period 4 → exactly 10 samples.
        let sampler = e.hook_sampler().expect("sampler attached");
        assert_eq!(sampler.period(), 4);
        assert_eq!(sampler.samples(), 10);
        assert_eq!(recorder.histogram(names::PROFILE_HOOK_NS).count(), 10);
        assert_eq!(
            recorder.gauge(names::PROFILE_HOOK_PERIOD).get(),
            4,
            "period stamped as gauge"
        );
        // Sampling must not perturb the encoding.
        let plan2 = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut oracle = DeltaEncoder::new(&plan2);
        oracle.thread_start(p.entry());
        for _ in 0..10 {
            let t = oracle.on_call(site);
            let en = oracle.on_entry(leaf, Some(site));
            oracle.on_exit(leaf, en);
            oracle.on_return(site, t);
        }
        assert_eq!(oracle.counts(), e.counts());
        assert_eq!(oracle.state().id(), e.state().id());
    }

    #[test]
    fn uninstrumented_points_are_no_ops() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let compiled = plan.compile();
        let mut e = CompiledDeltaEncoder::new(&compiled);
        e.thread_start(p.entry());
        let bogus_site = SiteId::from_index(4_096);
        let bogus_method = MethodId::from_index(4_096);
        let t = e.on_call(bogus_site);
        assert!(t.is_none());
        assert_eq!(e.on_entry(bogus_method, None), EntryOutcome::Plain);
        e.on_return(bogus_site, t);
        assert_eq!(e.counts(), OpCounts::default());
        assert_eq!(e.state().id(), 0);
    }
}
