//! Built-in encoders: native baseline, DeltaPath, and stack walking.
//!
//! (PCC, Breadcrumbs-lite and the calling-context tree live in
//! `deltapath-baselines`.)

use std::sync::Arc;

use deltapath_core::{DeltaState, EncodingPlan, EntryOutcome, ResolvedEntry, ResolvedSite};
use deltapath_ir::{MethodId, SiteId};
use deltapath_telemetry::Telemetry;

use crate::encoder::{report_op_counts, Capture, ContextEncoder, OpCounts};

/// The native baseline: no instrumentation at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullEncoder;

impl ContextEncoder for NullEncoder {
    type CallToken = ();
    type EntryToken = ();

    fn thread_start(&mut self, _entry: MethodId) {}
    fn on_call(&mut self, _site: SiteId) {}
    fn on_return(&mut self, _site: SiteId, _token: ()) {}
    fn on_entry(&mut self, _method: MethodId, _via_site: Option<SiteId>) {}
    fn on_exit(&mut self, _method: MethodId, _token: ()) {}

    fn observe(&mut self, _at: MethodId) -> Capture {
        Capture::None
    }

    fn counts(&self) -> OpCounts {
        OpCounts::default()
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

/// The DeltaPath encoder: drives a [`DeltaState`] according to an
/// [`EncodingPlan`] and meters every abstract operation the injected code
/// would execute.
#[derive(Debug)]
pub struct DeltaEncoder<'p> {
    plan: &'p EncodingPlan,
    state: DeltaState,
    counts: OpCounts,
    stack_hwm: usize,
    ucp_detections: u64,
}

impl<'p> DeltaEncoder<'p> {
    /// Creates an encoder for `plan`. The state is initialized lazily by
    /// [`thread_start`](ContextEncoder::thread_start).
    pub fn new(plan: &'p EncodingPlan) -> Self {
        Self {
            plan,
            state: DeltaState::start(plan.entry_method()),
            counts: OpCounts::default(),
            stack_hwm: 0,
            ucp_detections: 0,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &'p EncodingPlan {
        self.plan
    }

    /// The current encoding state (e.g. to snapshot outside observation
    /// points).
    pub fn state(&self) -> &DeltaState {
        &self.state
    }

    /// The deepest the encoding stack has grown (a high-water mark over the
    /// encoder's whole lifetime — like the op counts, it is not reset by
    /// [`thread_start`](ContextEncoder::thread_start)).
    pub fn stack_high_water(&self) -> usize {
        self.stack_hwm
    }

    /// Number of hazardous unexpected call paths detected (failed SID
    /// checks at method entries, each of which pushed a UCP frame).
    pub fn ucp_detections(&self) -> u64 {
        self.ucp_detections
    }
}

impl ContextEncoder for DeltaEncoder<'_> {
    type CallToken = Option<deltapath_core::CallToken>;
    type EntryToken = EntryOutcome;

    fn thread_start(&mut self, entry: MethodId) {
        self.state = DeltaState::start(entry);
    }

    fn on_call(&mut self, site: SiteId) -> Self::CallToken {
        let instr = self.plan.site(site)?;
        let r = ResolvedSite::of(instr, self.plan.config().cpt);
        if r.encoded {
            self.counts.adds += 1;
        }
        if r.save_pending {
            self.counts.pending_saves += 1;
        }
        Some(self.state.on_call_resolved(site, r))
    }

    fn on_return(&mut self, _site: SiteId, token: Self::CallToken) {
        let Some(token) = token else { return };
        // The matching `ID -= av` of the call — emitted only where the
        // addition was (encoded sites). The token carries the resolved
        // instruction, so the return side needs no plan lookup at all.
        if token.encoded() {
            self.counts.subs += 1;
        }
        self.state.on_return(token);
    }

    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> EntryOutcome {
        let Some(entry) = self.plan.entry(method) else {
            return EntryOutcome::Plain;
        };
        // Only instrumented dispatching sites count as "via" — a site in an
        // uninstrumented caller has no injected code, so the entry hook sees
        // only the thread-local expectation.
        let via = via_site.filter(|&s| self.plan.site(s).is_some());
        let back_edge = via.is_some_and(|s| self.plan.is_back_edge_call(s, method));
        let r = ResolvedEntry::of(entry, self.plan.config().cpt, back_edge);
        if r.do_check {
            self.counts.sid_checks += 1;
        }
        let outcome = self.state.on_entry_resolved(method, via, r);
        if outcome.pushed() {
            self.counts.pushes += 1;
            self.stack_hwm = self.stack_hwm.max(self.state.depth());
            if outcome == EntryOutcome::PushedUcp {
                self.ucp_detections += 1;
            }
        }
        outcome
    }

    fn on_exit(&mut self, _method: MethodId, token: EntryOutcome) {
        if token.pushed() {
            self.counts.pops += 1;
        }
        self.state.on_exit(token);
    }

    fn observe(&mut self, at: MethodId) -> Capture {
        Capture::Delta(self.state.snapshot(at))
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        if self.plan.config().cpt {
            "deltapath"
        } else {
            "deltapath-nocpt"
        }
    }

    fn report_telemetry(&self, sink: &dyn Telemetry) {
        let name = self.name();
        report_op_counts(sink, name, &self.counts);
        sink.gauge_max(&format!("encoder.{name}.stack_hwm"), self.stack_hwm as u64);
        sink.counter_add(
            &format!("encoder.{name}.ucp_detections"),
            self.ucp_detections,
        );
        // A nonzero imbalance means the run ended mid-call-tree (error or
        // abort): pushes without their matching pops.
        sink.counter_add(
            &format!("encoder.{name}.push_pop_imbalance"),
            self.counts.pushes.saturating_sub(self.counts.pops),
        );
    }
}

/// Stack walking: maintains a shadow stack of the methods in a chosen scope
/// and reproduces it on demand — the expensive, precise baseline and the
/// ground truth for precision experiments.
///
/// Captures share one allocation per stack shape: `observe` materializes
/// the shadow stack into an `Arc<[MethodId]>` only when a push or pop has
/// invalidated the previous capture, so repeated observations at the same
/// depth are allocation-free (Entries-mode collection used to clone the
/// whole stack per capture — quadratic in depth).
#[derive(Clone, Debug)]
pub struct StackWalkEncoder {
    /// Membership test: a method is kept on the shadow stack iff this
    /// returns true (e.g. application-scope methods only).
    keep: fn(MethodId) -> bool,
    stack: Vec<MethodId>,
    /// The last materialized capture; `None` while the stack is dirty.
    cached: Option<Arc<[MethodId]>>,
    /// How many times `observe` materialized a fresh allocation.
    rebuilds: u64,
    counts: OpCounts,
}

impl StackWalkEncoder {
    /// Walks every method.
    pub fn full() -> Self {
        Self::filtered(|_| true)
    }

    /// Walks only methods accepted by `keep`.
    pub fn filtered(keep: fn(MethodId) -> bool) -> Self {
        Self {
            keep,
            stack: Vec::new(),
            cached: None,
            rebuilds: 0,
            counts: OpCounts::default(),
        }
    }

    /// The current shadow stack (outermost first).
    pub fn stack(&self) -> &[MethodId] {
        &self.stack
    }

    /// Number of times `observe` had to allocate a fresh stack copy (at
    /// most one per push/pop between observations; pinned by tests).
    pub fn stack_rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

impl ContextEncoder for StackWalkEncoder {
    type CallToken = ();
    type EntryToken = bool;

    fn thread_start(&mut self, entry: MethodId) {
        self.stack.clear();
        self.cached = None;
        if (self.keep)(entry) {
            self.stack.push(entry);
        }
    }

    fn on_call(&mut self, _site: SiteId) {}
    fn on_return(&mut self, _site: SiteId, _token: ()) {}

    fn on_entry(&mut self, method: MethodId, _via_site: Option<SiteId>) -> bool {
        if (self.keep)(method) {
            self.stack.push(method);
            self.cached = None;
            true
        } else {
            false
        }
    }

    fn on_exit(&mut self, _method: MethodId, pushed: bool) {
        if pushed {
            self.stack.pop();
            self.cached = None;
        }
    }

    fn observe(&mut self, _at: MethodId) -> Capture {
        // Walking visits every live frame.
        self.counts.walked_frames += self.stack.len() as u64;
        let shared = match &self.cached {
            Some(shared) => Arc::clone(shared),
            None => {
                self.rebuilds += 1;
                let shared: Arc<[MethodId]> = Arc::from(self.stack.as_slice());
                self.cached = Some(Arc::clone(&shared));
                shared
            }
        };
        Capture::Walk(shared)
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        "stackwalk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_encoder_costs_nothing() {
        let mut e = NullEncoder;
        e.thread_start(MethodId::from_index(0));
        e.on_call(SiteId::from_index(0));
        assert_eq!(e.observe(MethodId::from_index(0)), Capture::None);
        assert_eq!(e.counts(), OpCounts::default());
        assert_eq!(e.name(), "native");
    }

    #[test]
    fn stack_walk_tracks_entries_and_exits() {
        let mut e = StackWalkEncoder::full();
        let (a, b) = (MethodId::from_index(0), MethodId::from_index(1));
        e.thread_start(a);
        let t = e.on_entry(b, None);
        assert_eq!(e.observe(b), Capture::Walk(vec![a, b].into()));
        e.on_exit(b, t);
        assert_eq!(e.observe(a), Capture::Walk(vec![a].into()));
        assert_eq!(e.counts().walked_frames, 3);
    }

    #[test]
    fn filtered_walk_skips_methods() {
        let mut e = StackWalkEncoder::filtered(|m| m.index() != 1);
        let (a, b, c) = (
            MethodId::from_index(0),
            MethodId::from_index(1),
            MethodId::from_index(2),
        );
        e.thread_start(a);
        let tb = e.on_entry(b, None);
        let tc = e.on_entry(c, None);
        assert_eq!(e.observe(c), Capture::Walk(vec![a, c].into()));
        e.on_exit(c, tc);
        e.on_exit(b, tb);
        assert_eq!(e.stack(), &[a]);
    }

    #[test]
    fn repeated_observations_share_one_allocation() {
        let mut e = StackWalkEncoder::full();
        let (a, b) = (MethodId::from_index(0), MethodId::from_index(1));
        e.thread_start(a);
        let t = e.on_entry(b, None);
        let Capture::Walk(first) = e.observe(b) else {
            panic!("walk capture expected");
        };
        // A quiet stack re-uses the materialized allocation verbatim.
        for _ in 0..10 {
            let Capture::Walk(again) = e.observe(b) else {
                panic!("walk capture expected");
            };
            assert!(Arc::ptr_eq(&first, &again));
        }
        assert_eq!(e.stack_rebuilds(), 1);
        // A pop invalidates it: exactly one new allocation, not one per
        // observation.
        e.on_exit(b, t);
        let Capture::Walk(shallow) = e.observe(a) else {
            panic!("walk capture expected");
        };
        assert!(!Arc::ptr_eq(&first, &shallow));
        e.observe(a);
        e.observe(a);
        assert_eq!(e.stack_rebuilds(), 2);
        // The earlier capture still holds the deep stack it saw.
        assert_eq!(&*first, &[a, b]);
    }
}
