//! Dynamic calling-context tree (Ammons/Ball/Larus-style), the classic
//! alternative representation the paper's related-work section contrasts
//! with encoding: precise and decodable, but with per-call tree-walking
//! cost and memory proportional to the number of distinct contexts.

use std::collections::HashMap;

use deltapath_ir::{MethodId, SiteId};
use deltapath_runtime::{Capture, ContextEncoder, OpCounts};

/// One CCT node: a method reached through a specific ancestor chain.
#[derive(Clone, Debug)]
struct CctNode {
    method: MethodId,
    parent: Option<usize>,
    children: HashMap<(SiteId, MethodId), usize>,
}

/// The calling-context-tree encoder: the current context is a node in a
/// growing tree; observation captures the node index.
#[derive(Clone, Debug)]
pub struct CctEncoder {
    nodes: Vec<CctNode>,
    current: usize,
    counts: OpCounts,
    pending_site: Option<SiteId>,
}

impl CctEncoder {
    /// Creates an empty tree (rooted on the first `thread_start`).
    pub fn new() -> Self {
        Self {
            nodes: vec![CctNode {
                method: MethodId::from_index(0),
                parent: None,
                children: HashMap::new(),
            }],
            current: 0,
            counts: OpCounts::default(),
            pending_site: None,
        }
    }

    /// Number of materialized tree nodes — the CCT's memory footprint, one
    /// of the costs encoding techniques avoid.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Reconstructs the method path from the root to `node` (the CCT's
    /// "decoding").
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn path_of(&self, node: usize) -> Vec<MethodId> {
        let mut path = Vec::new();
        let mut cur = Some(node);
        while let Some(ix) = cur {
            path.push(self.nodes[ix].method);
            cur = self.nodes[ix].parent;
        }
        path.reverse();
        path
    }
}

impl Default for CctEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextEncoder for CctEncoder {
    type CallToken = ();
    /// The node to return to at exit.
    type EntryToken = usize;

    fn thread_start(&mut self, entry: MethodId) {
        self.nodes.clear();
        self.nodes.push(CctNode {
            method: entry,
            parent: None,
            children: HashMap::new(),
        });
        self.current = 0;
        self.pending_site = None;
    }

    fn on_call(&mut self, site: SiteId) {
        self.pending_site = Some(site);
    }

    fn on_return(&mut self, _site: SiteId, _token: ()) {}

    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> usize {
        let saved = self.current;
        let site = via_site
            .or(self.pending_site)
            .unwrap_or(SiteId::from_index(u32::MAX as usize));
        self.counts.cct_moves += 1;
        let next_index = self.nodes.len();
        let entry = self.nodes[self.current]
            .children
            .entry((site, method))
            .or_insert(next_index);
        let child = *entry;
        if child == next_index {
            self.nodes.push(CctNode {
                method,
                parent: Some(self.current),
                children: HashMap::new(),
            });
        }
        self.current = child;
        saved
    }

    fn on_exit(&mut self, _method: MethodId, saved: usize) {
        self.counts.cct_moves += 1;
        self.current = saved;
    }

    fn observe(&mut self, _at: MethodId) -> Capture {
        Capture::CctNode(self.current)
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        "cct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: usize) -> MethodId {
        MethodId::from_index(i)
    }
    fn s(i: usize) -> SiteId {
        SiteId::from_index(i)
    }

    #[test]
    fn builds_tree_and_reuses_nodes() {
        let mut e = CctEncoder::new();
        e.thread_start(m(0));
        // Call m1 via s0 twice: one child node, reused.
        for _ in 0..2 {
            e.on_call(s(0));
            let t = e.on_entry(m(1), Some(s(0)));
            e.on_exit(m(1), t);
        }
        assert_eq!(e.node_count(), 2);
        // Same method via a different site: a distinct node.
        e.on_call(s(1));
        let t = e.on_entry(m(1), Some(s(1)));
        assert_eq!(e.node_count(), 3);
        assert_eq!(e.path_of(2), vec![m(0), m(1)]);
        e.on_exit(m(1), t);
    }

    #[test]
    fn observe_distinguishes_contexts() {
        let mut e = CctEncoder::new();
        e.thread_start(m(0));
        e.on_call(s(0));
        let t1 = e.on_entry(m(1), Some(s(0)));
        let c1 = e.observe(m(1));
        e.on_call(s(2));
        let t2 = e.on_entry(m(2), Some(s(2)));
        let c2 = e.observe(m(2));
        assert_ne!(c1, c2);
        e.on_exit(m(2), t2);
        e.on_exit(m(1), t1);
        assert_eq!(e.observe(m(0)), Capture::CctNode(0));
    }

    #[test]
    fn path_reconstruction_matches_entries() {
        let mut e = CctEncoder::new();
        e.thread_start(m(9));
        e.on_call(s(0));
        let t1 = e.on_entry(m(4), Some(s(0)));
        e.on_call(s(1));
        let _t2 = e.on_entry(m(7), Some(s(1)));
        let Capture::CctNode(n) = e.observe(m(7)) else {
            unreachable!()
        };
        assert_eq!(e.path_of(n), vec![m(9), m(4), m(7)]);
        let _ = t1;
    }
}
