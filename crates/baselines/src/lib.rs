//! # deltapath-baselines
//!
//! Baseline calling-context techniques the DeltaPath paper compares against,
//! implemented over the same interpreter hooks
//! ([`ContextEncoder`](deltapath_runtime::ContextEncoder)) so that all
//! techniques run on identical executions:
//!
//! * [`PccEncoder`] — probabilistic calling context (Bond & McKinley):
//!   `V' = 3V + cs` per call site. The paper's primary comparison
//!   (Figure 8, Table 2). Cheap, object-oriented-friendly, but hash-based
//!   and therefore collision-prone and undecodable.
//! * [`BreadcrumbsEncoder`] — Breadcrumbs-lite: PCC plus recording at cold
//!   call sites and an expensive offline search-based decoder, reproducing
//!   the cost/accuracy trade-off the paper criticizes.
//! * [`CctEncoder`] — a dynamic calling-context tree: precise and decodable
//!   but with per-call tree navigation and memory growth.
//!
//! (Stack walking lives in `deltapath-runtime` as
//! [`StackWalkEncoder`](deltapath_runtime::StackWalkEncoder), doubling as
//! the experiments' ground truth.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breadcrumbs;
mod cct;
mod hybrid;
mod pcc;

pub use breadcrumbs::{BreadcrumbsDecoder, BreadcrumbsEncoder, BreadcrumbsOutcome};
pub use cct::CctEncoder;
pub use hybrid::{
    HybridCallToken, HybridDecoder, HybridDictionary, HybridEncoder, HybridEntryToken, HybridPlan,
};
pub use pcc::{PccEncoder, PccWidth};
