//! Hybrid PCC + DeltaPath encoding (paper Section 8, "Hybrid Encoding").
//!
//! PCC has the most compact representation (one integer) but no decoding;
//! DeltaPath decodes but needs a stack in deep programs. The paper sketches
//! a combination: profile the program, let the methods of the hottest
//! calling contexts form the *trunk* of the call graph, run PCC inside the
//! trunk, and run DeltaPath below it with the trunk-exit methods acting as
//! anchors. A profiling-learned dictionary maps PCC values of trunk
//! prefixes back to contexts, so decoding capability is preserved: hot
//! contexts are represented by a single hash plus a short DeltaPath piece.
//!
//! This module implements that sketch:
//!
//! * [`HybridPlan::analyze`] — builds the DeltaPath plan over the non-trunk
//!   subgraph (trunk-exit targets are anchored via the UCP-candidate
//!   mechanism) and records which call sites are trunk-internal;
//! * [`HybridPlan::learn_dictionary`] — a profiling run recording the PCC
//!   value and the true trunk context at every trunk-boundary crossing;
//! * [`HybridEncoder`] — the runtime: `V' = 3V + cs` inside the trunk,
//!   DeltaPath below it, boundary frames connecting the two;
//! * [`HybridDecoder`] — dictionary lookup for the trunk prefix, exact
//!   DeltaPath decoding for the rest.
//!
//! Scope notes (the paper gives only a sketch): the trunk must contain the
//! program entry (hot contexts start at `main`). When control re-enters
//! trunk methods from below a boundary, their sites do not update the PCC
//! value (hashing is trunk-region-only), so the recorded prefix stays
//! intact; the context inside such re-entered trunk code is attributed to
//! the boundary — a limitation of the sketch, noted here.

use std::collections::{HashMap, HashSet};

use deltapath_callgraph::{Analysis, CallGraph, GraphConfig, ScopeFilter};
use deltapath_core::{
    DecodeError, DeltaState, EncodeError, EncodingPlan, EntryOutcome, PlanConfig,
};
use deltapath_ir::{MethodId, Program, SiteId};
use deltapath_runtime::{Capture, Collector, ContextEncoder, OpCounts, Vm, VmConfig};

use crate::pcc::PccEncoder;

/// The static analysis result for hybrid encoding.
#[derive(Clone, Debug)]
pub struct HybridPlan {
    delta_plan: EncodingPlan,
    trunk: HashSet<MethodId>,
    /// Sites whose caller and every statically known target are in the
    /// trunk: these update the PCC hash.
    trunk_sites: HashSet<SiteId>,
}

impl HybridPlan {
    /// Analyses `program` with the given trunk (typically the methods of
    /// the hottest profiled contexts).
    ///
    /// # Errors
    ///
    /// Fails like [`EncodingPlan::from_graph`]; additionally the entry
    /// method must be in the trunk ([`EncodeError::NoRoots`] otherwise).
    pub fn analyze(
        program: &Program,
        trunk: HashSet<MethodId>,
        config: &PlanConfig,
    ) -> Result<Self, EncodeError> {
        if !trunk.contains(&program.entry()) {
            return Err(EncodeError::NoRoots);
        }
        let full = CallGraph::build(
            program,
            &GraphConfig {
                analysis: config.analysis,
                scope: ScopeFilter::All,
                include_dynamic: false,
            },
        );
        // The DeltaPath subgraph: non-trunk nodes and the edges among them.
        // Non-trunk targets of trunk edges become UCP-entry candidates, so
        // the plan anchors them and their pieces decode exactly.
        let mut sub = CallGraph::empty();
        for node in full.nodes() {
            let m = full.method_of(node);
            if !trunk.contains(&m) {
                sub.add_node(m);
            }
        }
        for edge in full.edges() {
            let caller = full.method_of(edge.caller);
            let callee = full.method_of(edge.callee);
            match (trunk.contains(&caller), trunk.contains(&callee)) {
                (false, false) => {
                    let c = sub.add_node(caller);
                    let t = sub.add_node(callee);
                    sub.add_edge(c, t, edge.site);
                }
                (true, false) => {
                    let t = sub.add_node(callee);
                    sub.add_ucp_entry_candidate(t);
                }
                _ => {}
            }
        }
        // Boundary targets with no in-subgraph callers are roots.
        let candidates: Vec<_> = sub.ucp_entry_candidates().to_vec();
        for node in candidates {
            if sub.in_edges(node).is_empty() {
                sub.add_root(node);
            }
        }
        let delta_plan = EncodingPlan::from_graph(program, sub, config)?;

        let mut trunk_sites = HashSet::new();
        for site in full.instrumented_sites() {
            let edges = full.site_edges(site);
            let caller_in = trunk.contains(&full.method_of(full.edge(edges[0]).caller));
            let all_targets_in = edges
                .iter()
                .all(|&e| trunk.contains(&full.method_of(full.edge(e).callee)));
            if caller_in && all_targets_in {
                trunk_sites.insert(site);
            }
        }
        Ok(Self {
            delta_plan,
            trunk,
            trunk_sites,
        })
    }

    /// A trunk chosen from profile data: the `hot_count` most frequently
    /// entered methods, closed over their callers in the call graph (every
    /// method from which a hot method is reachable). Hot calling contexts
    /// start at `main`, so the paper's trunk — "the functions in those
    /// calling contexts" — is exactly this upper region of the graph.
    pub fn trunk_from_profile(
        program: &Program,
        profile: &HashMap<MethodId, u64>,
        hot_count: usize,
    ) -> HashSet<MethodId> {
        let mut ranked: Vec<(&MethodId, &u64)> = profile.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let hot: Vec<MethodId> = ranked.iter().take(hot_count).map(|(&m, _)| m).collect();

        let graph = CallGraph::build(program, &GraphConfig::new(Analysis::Cha));
        let hot_nodes: Vec<_> = hot.iter().filter_map(|&m| graph.node_of(m)).collect();
        let reaches = deltapath_callgraph::reaches_to(&graph, &hot_nodes, &HashSet::new());
        let mut trunk: HashSet<MethodId> = graph
            .nodes()
            .filter(|n| reaches[n.index()])
            .map(|n| graph.method_of(n))
            .collect();
        trunk.extend(hot);
        trunk.insert(program.entry());
        trunk
    }

    /// The DeltaPath plan over the non-trunk region.
    pub fn delta_plan(&self) -> &EncodingPlan {
        &self.delta_plan
    }

    /// Whether `method` belongs to the trunk.
    pub fn in_trunk(&self, method: MethodId) -> bool {
        self.trunk.contains(&method)
    }

    /// Whether `site` is trunk-internal (PCC-instrumented).
    pub fn is_trunk_site(&self, site: SiteId) -> bool {
        self.trunk_sites.contains(&site)
    }

    /// Learns the PCC-value → trunk-context dictionary by executing
    /// `program` once with a profiling encoder that walks the trunk stack
    /// at every boundary crossing — the paper's "perform profiling to
    /// establish the mapping".
    pub fn learn_dictionary(&self, program: &Program, vm_config: VmConfig) -> HybridDictionary {
        struct Learner<'a> {
            plan: &'a HybridPlan,
            v: u64,
            trunk_stack: Vec<MethodId>,
            dict: HashMap<u64, Vec<MethodId>>,
            conflicts: usize,
        }
        impl ContextEncoder for Learner<'_> {
            type CallToken = Option<u64>;
            type EntryToken = bool;

            fn thread_start(&mut self, entry: MethodId) {
                self.v = 0;
                self.trunk_stack = vec![entry];
            }

            fn on_call(&mut self, site: SiteId) -> Option<u64> {
                if self.plan.is_trunk_site(site) {
                    let saved = self.v;
                    self.v = self
                        .v
                        .wrapping_mul(3)
                        .wrapping_add(PccEncoder::site_constant(site));
                    Some(saved)
                } else {
                    None
                }
            }

            fn on_return(&mut self, _site: SiteId, token: Option<u64>) {
                if let Some(saved) = token {
                    self.v = saved;
                }
            }

            fn on_entry(&mut self, method: MethodId, _via: Option<SiteId>) -> bool {
                if self.plan.in_trunk(method) {
                    self.trunk_stack.push(method);
                    true
                } else {
                    // A boundary crossing: record the trunk prefix.
                    match self.dict.entry(self.v) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(self.trunk_stack.clone());
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if e.get() != &self.trunk_stack {
                                self.conflicts += 1;
                            }
                        }
                    }
                    false
                }
            }

            fn on_exit(&mut self, _method: MethodId, pushed: bool) {
                if pushed {
                    self.trunk_stack.pop();
                }
            }

            fn observe(&mut self, _at: MethodId) -> Capture {
                // Observation points inside the trunk also need their
                // prefix learned (captures taken there decode via the
                // dictionary alone).
                self.dict
                    .entry(self.v)
                    .or_insert_with(|| self.trunk_stack.clone());
                Capture::None
            }

            fn counts(&self) -> OpCounts {
                OpCounts::default()
            }

            fn name(&self) -> &'static str {
                "hybrid-learner"
            }
        }

        struct Drop_;
        impl Collector for Drop_ {
            fn record_entry(&mut self, _: MethodId, _: usize, _: Capture) {}
            fn record_observe(&mut self, _: u32, _: MethodId, _: Capture) {}
        }

        let mut learner = Learner {
            plan: self,
            v: 0,
            trunk_stack: Vec::new(),
            dict: HashMap::new(),
            conflicts: 0,
        };
        let mut vm = Vm::new(program, vm_config);
        vm.run(&mut learner, &mut Drop_).expect("profiling run");
        HybridDictionary {
            prefixes: learner.dict,
            hash_conflicts: learner.conflicts,
        }
    }
}

/// The learned mapping from PCC trunk values to trunk contexts.
#[derive(Clone, Debug, Default)]
pub struct HybridDictionary {
    prefixes: HashMap<u64, Vec<MethodId>>,
    /// Number of distinct trunk contexts that collided on one hash during
    /// learning (the residual probabilistic weakness PCC brings along).
    pub hash_conflicts: usize,
}

impl HybridDictionary {
    /// Number of learned trunk prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Looks up the trunk context for a PCC value.
    pub fn prefix(&self, v: u64) -> Option<&[MethodId]> {
        self.prefixes.get(&v).map(Vec::as_slice)
    }
}

/// The hybrid runtime encoder: PCC in the trunk, DeltaPath below it.
#[derive(Debug)]
pub struct HybridEncoder<'p> {
    plan: &'p HybridPlan,
    v: u64,
    /// `(v at boundary, DeltaPath state since the boundary)` — one level per
    /// active trunk exit.
    regions: Vec<(u64, DeltaState)>,
    counts: OpCounts,
}

/// Caller-saved state for [`HybridEncoder`] calls.
#[derive(Debug)]
pub enum HybridCallToken {
    /// Trunk-internal call: the saved PCC value.
    TrunkHash(u64),
    /// DeltaPath-region call: the saved DeltaPath token.
    Delta(deltapath_core::CallToken),
    /// Uninstrumented call.
    Nothing,
}

/// Entry bookkeeping for [`HybridEncoder`].
#[derive(Debug)]
pub enum HybridEntryToken {
    /// Trunk method entered from the trunk (or re-entered from below).
    Trunk,
    /// A trunk-exit boundary: a fresh DeltaPath region was opened.
    Boundary,
    /// A normal entry inside the current DeltaPath region.
    Delta(EntryOutcome),
}

impl<'p> HybridEncoder<'p> {
    /// Creates the encoder for a hybrid plan.
    pub fn new(plan: &'p HybridPlan) -> Self {
        Self {
            plan,
            v: 0,
            regions: Vec::new(),
            counts: OpCounts::default(),
        }
    }

    fn in_trunk_region(&self) -> bool {
        self.regions.is_empty()
    }
}

impl ContextEncoder for HybridEncoder<'_> {
    type CallToken = HybridCallToken;
    type EntryToken = HybridEntryToken;

    fn thread_start(&mut self, _entry: MethodId) {
        self.v = 0;
        self.regions.clear();
    }

    fn on_call(&mut self, site: SiteId) -> HybridCallToken {
        if self.plan.is_trunk_site(site) && self.in_trunk_region() {
            self.counts.hashes += 1;
            let saved = self.v;
            self.v = self
                .v
                .wrapping_mul(3)
                .wrapping_add(PccEncoder::site_constant(site));
            return HybridCallToken::TrunkHash(saved);
        }
        if let Some((_, state)) = self.regions.last_mut() {
            if let Some(instr) = self.plan.delta_plan.site(site) {
                if instr.encoded {
                    self.counts.adds += 1;
                }
                if self.plan.delta_plan.config().cpt {
                    self.counts.pending_saves += 1;
                }
                return HybridCallToken::Delta(state.on_call(&self.plan.delta_plan, site));
            }
        }
        HybridCallToken::Nothing
    }

    fn on_return(&mut self, _site: SiteId, token: HybridCallToken) {
        match token {
            HybridCallToken::TrunkHash(saved) => self.v = saved,
            HybridCallToken::Delta(t) => {
                if let Some((_, state)) = self.regions.last_mut() {
                    self.counts.subs += 1;
                    state.on_return(t);
                }
            }
            HybridCallToken::Nothing => {}
        }
    }

    fn on_entry(&mut self, method: MethodId, via_site: Option<SiteId>) -> HybridEntryToken {
        if self.plan.in_trunk(method) {
            return HybridEntryToken::Trunk;
        }
        if self.in_trunk_region() {
            // Trunk-exit boundary: open a DeltaPath region rooted here.
            self.counts.pushes += 1;
            self.regions.push((self.v, DeltaState::start(method)));
            return HybridEntryToken::Boundary;
        }
        let (_, state) = self.regions.last_mut().expect("delta region active");
        if self.plan.delta_plan.entry(method).is_none() {
            return HybridEntryToken::Delta(EntryOutcome::Plain);
        }
        if self.plan.delta_plan.config().cpt {
            self.counts.sid_checks += 1;
        }
        let via = via_site.filter(|&s| self.plan.delta_plan.site(s).is_some());
        let outcome = state.on_entry(&self.plan.delta_plan, method, via);
        if outcome.pushed() {
            self.counts.pushes += 1;
        }
        HybridEntryToken::Delta(outcome)
    }

    fn on_exit(&mut self, _method: MethodId, token: HybridEntryToken) {
        match token {
            HybridEntryToken::Trunk => {}
            HybridEntryToken::Boundary => {
                self.counts.pops += 1;
                self.regions.pop();
            }
            HybridEntryToken::Delta(outcome) => {
                if outcome.pushed() {
                    self.counts.pops += 1;
                }
                if let Some((_, state)) = self.regions.last_mut() {
                    state.on_exit(outcome);
                }
            }
        }
    }

    fn observe(&mut self, at: MethodId) -> Capture {
        match self.regions.last() {
            Some((v, state)) => Capture::Hybrid {
                trunk_v: *v,
                ctx: state.snapshot(at),
            },
            None => Capture::Hybrid {
                trunk_v: self.v,
                ctx: DeltaState::start(at).snapshot(at),
            },
        }
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

/// Decoder for hybrid captures: dictionary for the trunk prefix, exact
/// DeltaPath decoding below.
#[derive(Debug)]
pub struct HybridDecoder<'p> {
    plan: &'p HybridPlan,
    dictionary: &'p HybridDictionary,
}

impl<'p> HybridDecoder<'p> {
    /// Creates a decoder over the plan and a learned dictionary.
    pub fn new(plan: &'p HybridPlan, dictionary: &'p HybridDictionary) -> Self {
        Self { plan, dictionary }
    }

    /// Decodes a hybrid capture to the full context.
    ///
    /// # Errors
    ///
    /// [`DecodeError::NoMatchingEdge`]-style errors from the DeltaPath
    /// decoder, or [`DecodeError::UnknownMethod`] when the trunk value was
    /// never learned (the dictionary is probabilistic coverage, the paper's
    /// residual weakness).
    pub fn decode(&self, capture: &Capture) -> Result<Vec<MethodId>, DecodeError> {
        let Capture::Hybrid { trunk_v, ctx } = capture else {
            return Err(DecodeError::EmptyStack);
        };
        let mut out: Vec<MethodId> = match self.dictionary.prefix(*trunk_v) {
            Some(prefix) => prefix.to_vec(),
            None => {
                return Err(DecodeError::UnknownMethod(ctx.at));
            }
        };
        if self.plan.in_trunk(ctx.at) {
            // Captured inside the trunk itself: the prefix is the context.
            return Ok(out);
        }
        let suffix = self.plan.delta_plan.decoder().decode(ctx)?;
        out.extend(suffix);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};
    use deltapath_runtime::{CollectMode, EventLog};

    /// Trunk: main, hot, dispatch. Below: cold1 -> cold2 (observe).
    fn program() -> Program {
        let mut b = ProgramBuilder::new("hybrid");
        let c = b.add_class("C", None);
        b.method(c, "cold2", MethodKind::Static)
            .body(|f| {
                f.observe(1);
            })
            .finish();
        b.method(c, "cold1", MethodKind::Static)
            .body(|f| {
                f.call(c, "cold2");
            })
            .finish();
        b.method(c, "hot", MethodKind::Static)
            .work(1)
            .body(|f| {
                f.call(c, "cold1");
                f.observe(2); // a trunk-internal observation
            })
            .finish();
        b.method(c, "dispatch", MethodKind::Static)
            .body(|f| {
                f.call(c, "hot");
                f.call(c, "hot");
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "dispatch");
                f.call(c, "hot");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    fn method(p: &Program, name: &str) -> MethodId {
        p.declared_method(
            p.class_by_name("C").unwrap(),
            p.symbols().lookup(name).unwrap(),
        )
        .unwrap()
    }

    fn hybrid_plan(p: &Program) -> HybridPlan {
        let trunk: HashSet<MethodId> = ["main", "dispatch", "hot"]
            .iter()
            .map(|n| method(p, n))
            .collect();
        HybridPlan::analyze(p, trunk, &PlanConfig::default()).unwrap()
    }

    #[test]
    fn plan_partitions_sites() {
        let p = program();
        let plan = hybrid_plan(&p);
        // main->dispatch, dispatch->hot x2, main->hot are trunk sites;
        // hot->cold1 is a boundary site (not trunk-internal); cold1->cold2
        // is a delta site.
        let trunk_sites = p
            .sites()
            .iter()
            .filter(|s| plan.is_trunk_site(s.id()))
            .count();
        assert_eq!(trunk_sites, 4);
        assert!(plan.delta_plan().entry(method(&p, "cold1")).is_some());
        assert!(plan.delta_plan().entry(method(&p, "hot")).is_none());
        // cold1 is a boundary target and must be an anchor.
        assert!(
            plan.delta_plan()
                .entry(method(&p, "cold1"))
                .unwrap()
                .is_anchor
        );
    }

    #[test]
    fn hybrid_contexts_decode_with_dictionary() {
        let p = program();
        let plan = hybrid_plan(&p);
        let vm_config = VmConfig::default().with_collect(CollectMode::ObservesOnly);
        let dict = plan.learn_dictionary(&p, vm_config.clone());
        assert!(!dict.is_empty());
        assert_eq!(dict.hash_conflicts, 0);

        let mut vm = Vm::new(&p, vm_config);
        let mut enc = HybridEncoder::new(&plan);
        let mut log = EventLog::default();
        vm.run(&mut enc, &mut log).unwrap();
        // 3 hot invocations -> 3 cold2 events + 3 trunk observes.
        assert_eq!(log.events.len(), 6);

        let decoder = HybridDecoder::new(&plan, &dict);
        let names =
            |ms: &[MethodId]| -> Vec<String> { ms.iter().map(|&m| p.method_name(m)).collect() };
        let mut cold_contexts = Vec::new();
        let mut trunk_contexts = Vec::new();
        for (event, _, capture) in &log.events {
            let decoded = decoder.decode(capture).unwrap();
            if *event == 1 {
                cold_contexts.push(names(&decoded));
            } else {
                trunk_contexts.push(names(&decoded));
            }
        }
        // Cold events: full contexts through trunk + delta suffix.
        assert!(cold_contexts.contains(&vec![
            "C.main".into(),
            "C.dispatch".into(),
            "C.hot".into(),
            "C.cold1".into(),
            "C.cold2".into()
        ]));
        assert!(cold_contexts.contains(&vec![
            "C.main".into(),
            "C.hot".into(),
            "C.cold1".into(),
            "C.cold2".into()
        ]));
        // Trunk events decode from the dictionary alone.
        assert!(trunk_contexts.contains(&vec![
            "C.main".into(),
            "C.dispatch".into(),
            "C.hot".into()
        ]));
        assert!(trunk_contexts.contains(&vec!["C.main".into(), "C.hot".into()]));
    }

    #[test]
    fn distinct_trunk_paths_get_distinct_captures() {
        let p = program();
        let plan = hybrid_plan(&p);
        let vm_config = VmConfig::default().with_collect(CollectMode::ObservesOnly);
        let mut vm = Vm::new(&p, vm_config);
        let mut enc = HybridEncoder::new(&plan);
        let mut log = EventLog::default();
        vm.run(&mut enc, &mut log).unwrap();
        let unique: std::collections::HashSet<_> =
            log.events.iter().map(|(_, _, c)| c.clone()).collect();
        // dispatch invokes hot from two *different sites*, and encodings are
        // site-sensitive (as in the paper, where edges are
        // caller/callee/location triples): 3 distinct trunk site-paths, each
        // captured once inside the trunk and once at the cold leaf.
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn trunk_must_contain_entry() {
        let p = program();
        let result = HybridPlan::analyze(&p, HashSet::new(), &PlanConfig::default());
        assert!(matches!(result, Err(EncodeError::NoRoots)));
    }

    #[test]
    fn trunk_from_profile_ranks_by_heat() {
        let p = program();
        let mut profile = HashMap::new();
        profile.insert(method(&p, "hot"), 100u64);
        profile.insert(method(&p, "dispatch"), 50);
        profile.insert(method(&p, "cold1"), 1);
        let trunk = HybridPlan::trunk_from_profile(&p, &profile, 2);
        assert!(trunk.contains(&method(&p, "hot")));
        assert!(trunk.contains(&method(&p, "dispatch")));
        assert!(trunk.contains(&p.entry())); // always included
        assert!(!trunk.contains(&method(&p, "cold1")));
    }
}
