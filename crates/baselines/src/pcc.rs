//! Probabilistic calling context (Bond & McKinley, OOPSLA 2007) — the
//! state-of-the-art baseline the paper compares against.
//!
//! PCC maintains one thread-local value `V` and computes `V' = 3·V + cs` at
//! every instrumented call site (`cs` is a per-site constant), saving and
//! restoring `V` around the call. The value at any point is a probabilistically
//! unique hash of the current calling context: encoding is extremely cheap,
//! but there is no decoding, and distinct contexts can collide — exactly the
//! trade-off DeltaPath addresses.
//!
//! For a head-to-head comparison the encoder instruments the same call-site
//! set as a DeltaPath [`EncodingPlan`] (the paper does the same: "we adopt
//! the encoding-application setting for DeltaPath to instrument the same set
//! of functions").

use std::collections::HashSet;

use deltapath_core::EncodingPlan;
use deltapath_ir::{MethodId, SiteId};
use deltapath_runtime::{Capture, ContextEncoder, OpCounts};

/// The hash width PCC truncates its value to.
///
/// Bond & McKinley use 32-bit values on 32-bit platforms and 64-bit values
/// on 64-bit platforms; smaller widths make collisions measurable at small
/// context counts (useful in tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PccWidth {
    /// 16-bit values (testing: collisions appear at ~300 contexts).
    Bits16,
    /// 32-bit values (the paper's primary setting).
    Bits32,
    /// 64-bit values.
    Bits64,
}

impl PccWidth {
    fn mask(self) -> u64 {
        match self {
            PccWidth::Bits16 => 0xFFFF,
            PccWidth::Bits32 => 0xFFFF_FFFF,
            PccWidth::Bits64 => u64::MAX,
        }
    }
}

/// All call sites whose caller is instrumented by `plan`.
fn program_sites_of_plan(plan: &EncodingPlan) -> HashSet<SiteId> {
    // The plan records a SiteInstr for every site in an instrumented
    // caller; sweep the id space the graph knows about plus the plan's own
    // site table via instrumented_sites ∪ CPT-only sites.
    let mut sites: HashSet<SiteId> = plan.graph().instrumented_sites().into_iter().collect();
    sites.extend(plan.cpt_site_ids());
    sites
}

/// The PCC encoder.
#[derive(Clone, Debug)]
pub struct PccEncoder {
    sites: HashSet<SiteId>,
    width: PccWidth,
    v: u64,
    counts: OpCounts,
}

impl PccEncoder {
    /// Instruments exactly the given call sites.
    pub fn new(sites: HashSet<SiteId>, width: PccWidth) -> Self {
        Self {
            sites,
            width,
            v: 0,
            counts: OpCounts::default(),
        }
    }

    /// Instruments the same call sites as `plan`: every site inside an
    /// instrumented method — the paper's head-to-head setup ("both
    /// instrument the same set of call sites with simple arithmetic
    /// operations"). This includes sites DeltaPath covers only through
    /// call-path tracking (no ID arithmetic): PCC has no static analysis
    /// and hashes unconditionally.
    pub fn from_plan(plan: &EncodingPlan, width: PccWidth) -> Self {
        let sites = program_sites_of_plan(plan);
        Self::new(sites, width)
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.v
    }

    /// The per-site constant mixed into the hash: a splitmix64 scramble of
    /// the site id, as a stand-in for the call-site address the original
    /// uses.
    pub fn site_constant(site: SiteId) -> u64 {
        let mut z = u64::from(site.as_u32()).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ContextEncoder for PccEncoder {
    /// The caller-saved `V`.
    type CallToken = Option<u64>;
    type EntryToken = ();

    fn thread_start(&mut self, _entry: MethodId) {
        self.v = 0;
    }

    fn on_call(&mut self, site: SiteId) -> Option<u64> {
        if !self.sites.contains(&site) {
            return None;
        }
        let saved = self.v;
        self.counts.hashes += 1;
        self.v = self
            .v
            .wrapping_mul(3)
            .wrapping_add(Self::site_constant(site))
            & self.width.mask();
        Some(saved)
    }

    fn on_return(&mut self, _site: SiteId, token: Option<u64>) {
        if let Some(saved) = token {
            self.v = saved;
        }
    }

    fn on_entry(&mut self, _method: MethodId, _via_site: Option<SiteId>) {}
    fn on_exit(&mut self, _method: MethodId, _token: ()) {}

    fn observe(&mut self, _at: MethodId) -> Capture {
        Capture::Pcc(self.v)
    }

    fn counts(&self) -> OpCounts {
        self.counts
    }

    fn name(&self) -> &'static str {
        "pcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SiteId {
        SiteId::from_index(i)
    }
    fn m(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    fn hash_updates_and_restores() {
        let sites: HashSet<SiteId> = [s(0), s(1)].into_iter().collect();
        let mut e = PccEncoder::new(sites, PccWidth::Bits64);
        e.thread_start(m(0));
        let t0 = e.on_call(s(0));
        let v1 = e.value();
        assert_ne!(v1, 0);
        let t1 = e.on_call(s(1));
        assert_ne!(e.value(), v1);
        e.on_return(s(1), t1);
        assert_eq!(e.value(), v1);
        e.on_return(s(0), t0);
        assert_eq!(e.value(), 0);
        assert_eq!(e.counts().hashes, 2);
    }

    #[test]
    fn different_paths_usually_hash_differently() {
        let sites: HashSet<SiteId> = (0..4).map(s).collect();
        let mut e = PccEncoder::new(sites.clone(), PccWidth::Bits64);
        e.thread_start(m(0));
        e.on_call(s(0));
        e.on_call(s(1));
        let a = e.value();
        let mut e2 = PccEncoder::new(sites, PccWidth::Bits64);
        e2.thread_start(m(0));
        e2.on_call(s(0));
        e2.on_call(s(2));
        assert_ne!(a, e2.value());
    }

    #[test]
    fn uninstrumented_sites_are_ignored() {
        let mut e = PccEncoder::new(HashSet::new(), PccWidth::Bits32);
        e.thread_start(m(0));
        let t = e.on_call(s(9));
        assert_eq!(e.value(), 0);
        assert!(t.is_none());
        e.on_return(s(9), t);
        assert_eq!(e.counts().hashes, 0);
    }

    #[test]
    fn width_truncates() {
        let sites: HashSet<SiteId> = [s(0)].into_iter().collect();
        let mut e = PccEncoder::new(sites, PccWidth::Bits16);
        e.thread_start(m(0));
        e.on_call(s(0));
        assert!(e.value() <= 0xFFFF);
    }

    #[test]
    fn observe_captures_value() {
        let sites: HashSet<SiteId> = [s(0)].into_iter().collect();
        let mut e = PccEncoder::new(sites, PccWidth::Bits64);
        e.thread_start(m(0));
        e.on_call(s(0));
        assert_eq!(e.observe(m(1)), Capture::Pcc(e.value()));
    }
}
