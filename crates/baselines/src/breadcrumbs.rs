//! Breadcrumbs-lite (after Bond, Baker & Guyer, PLDI 2010).
//!
//! Breadcrumbs attempts to add decoding to PCC: it records the current hash
//! value at statically chosen *cold* call sites ("breadcrumbs"), then
//! decodes offline by searching the call graph for a path whose hash chain
//! reproduces the observed value — exploiting that `V' = 3V + cs` is
//! invertible modulo a power of two.
//!
//! This module reproduces the *cost structure* the DeltaPath paper
//! criticizes rather than the full hot/cold classification: recording makes
//! the encoder slower than plain PCC in proportion to the cold-site
//! fraction, and decoding is an expensive search whose effort and
//! reliability degrade with context depth (the original evaluation capped
//! it at five seconds per context), in contrast to DeltaPath's instant
//! walk. The search decoder is exact when it terminates uniquely; it
//! reports ambiguity and budget exhaustion honestly.

use std::collections::HashSet;

use deltapath_core::EncodingPlan;
use deltapath_ir::{MethodId, SiteId};
use deltapath_runtime::{Capture, ContextEncoder, OpCounts};

use crate::pcc::{PccEncoder, PccWidth};

/// Crumb context for a pruned search: the cold-site set and the recorded
/// `(site, value)` pairs.
type CrumbContext<'c> = (&'c HashSet<SiteId>, &'c HashSet<(SiteId, u64)>);

/// PCC plus breadcrumb recording at a chosen subset of call sites.
#[derive(Clone, Debug)]
pub struct BreadcrumbsEncoder {
    pcc: PccEncoder,
    cold_sites: HashSet<SiteId>,
    /// Recorded `(site, value-before-call)` pairs.
    crumbs: Vec<(SiteId, u64)>,
    extra: OpCounts,
}

impl BreadcrumbsEncoder {
    /// Instruments the same sites as `plan`; every `1/cold_ratio`-th site
    /// (by id order) records breadcrumbs. `cold_ratio = 1` records at every
    /// site ("very accurate" mode, the ~100%-overhead end of the paper's
    /// comparison); larger ratios approach plain PCC.
    pub fn from_plan(plan: &EncodingPlan, width: PccWidth, cold_ratio: usize) -> Self {
        let all: Vec<SiteId> = plan
            .graph()
            .instrumented_sites()
            .into_iter()
            .filter(|&s| plan.site(s).map(|i| i.encoded).unwrap_or(false))
            .collect();
        let cold_sites = all
            .iter()
            .enumerate()
            .filter(|(i, _)| cold_ratio != 0 && i % cold_ratio == 0)
            .map(|(_, &s)| s)
            .collect();
        Self {
            pcc: PccEncoder::from_plan(plan, width),
            cold_sites,
            crumbs: Vec::new(),
            extra: OpCounts::default(),
        }
    }

    /// The recorded breadcrumbs.
    pub fn crumbs(&self) -> &[(SiteId, u64)] {
        &self.crumbs
    }

    /// The statically chosen cold sites (where crumbs are recorded).
    pub fn cold_sites(&self) -> &HashSet<SiteId> {
        &self.cold_sites
    }
}

impl ContextEncoder for BreadcrumbsEncoder {
    type CallToken = Option<u64>;
    type EntryToken = ();

    fn thread_start(&mut self, entry: MethodId) {
        self.pcc.thread_start(entry);
        self.crumbs.clear();
    }

    fn on_call(&mut self, site: SiteId) -> Option<u64> {
        if self.cold_sites.contains(&site) {
            // Recording a breadcrumb is a store to a growing buffer; model
            // it as a push.
            self.extra.pushes += 1;
            self.crumbs.push((site, self.pcc.value()));
        }
        self.pcc.on_call(site)
    }

    fn on_return(&mut self, site: SiteId, token: Option<u64>) {
        self.pcc.on_return(site, token);
    }

    fn on_entry(&mut self, _method: MethodId, _via_site: Option<SiteId>) {}
    fn on_exit(&mut self, _method: MethodId, _token: ()) {}

    fn observe(&mut self, at: MethodId) -> Capture {
        self.pcc.observe(at)
    }

    fn counts(&self) -> OpCounts {
        let mut c = self.pcc.counts();
        c.pushes += self.extra.pushes;
        c
    }

    fn name(&self) -> &'static str {
        "breadcrumbs"
    }
}

/// The outcome of one offline Breadcrumbs decode attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BreadcrumbsOutcome {
    /// Exactly one path reproduces the hash.
    Unique(Vec<MethodId>),
    /// Multiple paths reproduce it — the hash is ambiguous.
    Ambiguous,
    /// The search budget was exhausted before the space was covered.
    BudgetExhausted,
    /// No path reproduces the hash within the depth bound.
    NotFound,
}

/// Offline search-based decoder for PCC/Breadcrumbs hash values.
///
/// Works backwards from the observation point, inverting `V' = 3V + cs`
/// along every incoming edge (the multiplier 3 is odd, hence invertible
/// modulo 2^k, so *every* edge is numerically possible — the search is
/// guided only by reaching a root with value zero, which is what makes it
/// expensive and fragile).
#[derive(Debug)]
pub struct BreadcrumbsDecoder<'a> {
    plan: &'a EncodingPlan,
    width: PccWidth,
    /// Maximum context depth considered.
    pub max_depth: usize,
    /// Maximum search states explored per decode.
    pub state_budget: usize,
}

impl<'a> BreadcrumbsDecoder<'a> {
    /// Creates a decoder over the call graph of `plan`.
    pub fn new(plan: &'a EncodingPlan, width: PccWidth) -> Self {
        Self {
            plan,
            width,
            max_depth: 64,
            state_budget: 1 << 20,
        }
    }

    /// Like [`decode`](Self::decode), but pruned by recorded breadcrumbs —
    /// the technique's actual mechanism: a backward step over a *cold* call
    /// site is only consistent if the inverted value was recorded as a crumb
    /// for that site, which collapses the search space wherever cold sites
    /// lie on the path.
    pub fn decode_with_crumbs(
        &self,
        at: MethodId,
        value: u64,
        cold_sites: &HashSet<SiteId>,
        crumbs: &[(SiteId, u64)],
    ) -> (BreadcrumbsOutcome, usize) {
        let crumb_set: HashSet<(SiteId, u64)> = crumbs.iter().copied().collect();
        self.search(at, value, Some((cold_sites, &crumb_set)))
    }

    /// Attempts to decode `value` observed at `at`; returns the outcome and
    /// the number of search states explored (the decode-cost metric reported
    /// in EXPERIMENTS.md).
    pub fn decode(&self, at: MethodId, value: u64) -> (BreadcrumbsOutcome, usize) {
        self.search(at, value, None)
    }

    fn search(
        &self,
        at: MethodId,
        value: u64,
        crumbs: Option<CrumbContext<'_>>,
    ) -> (BreadcrumbsOutcome, usize) {
        let graph = self.plan.graph();
        let Some(start) = graph.node_of(at) else {
            return (BreadcrumbsOutcome::NotFound, 0);
        };
        let mask = match self.width {
            PccWidth::Bits16 => 0xFFFFu64,
            PccWidth::Bits32 => 0xFFFF_FFFF,
            PccWidth::Bits64 => u64::MAX,
        };
        // Multiplicative inverse of 3 modulo 2^64 (truncates correctly for
        // narrower masks).
        const INV3: u64 = 0xAAAA_AAAA_AAAA_AAAB;

        let mut explored = 0usize;
        let mut found: Vec<Vec<MethodId>> = Vec::new();
        let mut exhausted = false;
        // Backward DFS over an arena of states with parent links (cloning a
        // path per state would dominate the search cost).
        struct State {
            node: deltapath_callgraph::NodeIx,
            value: u64,
            parent: usize,
            depth: usize,
        }
        let reconstruct =
            |arena: &[State], graph: &deltapath_callgraph::CallGraph, mut ix: usize| {
                let mut path = Vec::new();
                loop {
                    path.push(graph.method_of(arena[ix].node));
                    if arena[ix].parent == usize::MAX {
                        break;
                    }
                    ix = arena[ix].parent;
                }
                // The found state is the outermost caller and parents lead back
                // to the capture point, so the walk already yields
                // outermost-first order.
                path
            };
        let mut arena: Vec<State> = vec![State {
            node: start,
            value,
            parent: usize::MAX,
            depth: 1,
        }];
        let mut stack: Vec<usize> = vec![0];
        while let Some(ix) = stack.pop() {
            if explored >= self.state_budget {
                exhausted = true;
                break;
            }
            explored += 1;
            let (node, v, depth) = (arena[ix].node, arena[ix].value, arena[ix].depth);
            if graph.roots().contains(&node) && v == 0 {
                found.push(reconstruct(&arena, graph, ix));
                if found.len() > 1 {
                    break;
                }
                // Note: a root with incoming edges could also be an interior
                // node; keep searching alternatives below.
            }
            if depth > self.max_depth {
                continue;
            }
            for &e in graph.in_edges(node) {
                let edge = graph.edge(e);
                let c = PccEncoder::site_constant(edge.site) & mask;
                let prev = v.wrapping_sub(c).wrapping_mul(INV3) & mask;
                if let Some((cold, crumb_set)) = crumbs {
                    // The true execution recorded (site, V-before-call) at
                    // every cold site; a backward step over a cold site is
                    // only consistent with a matching crumb.
                    if cold.contains(&edge.site) && !crumb_set.contains(&(edge.site, prev)) {
                        continue;
                    }
                }
                arena.push(State {
                    node: edge.caller,
                    value: prev,
                    parent: ix,
                    depth: depth + 1,
                });
                stack.push(arena.len() - 1);
            }
        }
        let outcome = match (found.len(), exhausted) {
            (0, true) => BreadcrumbsOutcome::BudgetExhausted,
            (0, false) => BreadcrumbsOutcome::NotFound,
            (1, _) => BreadcrumbsOutcome::Unique(found.pop().expect("one path")),
            _ => BreadcrumbsOutcome::Ambiguous,
        };
        (outcome, explored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltapath_core::PlanConfig;
    use deltapath_ir::{MethodKind, Program, ProgramBuilder};
    use deltapath_runtime::{EventLog, Vm, VmConfig};

    fn program() -> Program {
        let mut b = ProgramBuilder::new("bc");
        let c = b.add_class("C", None);
        b.method(c, "leaf", MethodKind::Static)
            .body(|f| {
                f.observe(1);
            })
            .finish();
        b.method(c, "mid", MethodKind::Static)
            .body(|f| {
                f.call(c, "leaf");
            })
            .finish();
        let main = b
            .method(c, "main", MethodKind::Static)
            .body(|f| {
                f.call(c, "mid");
                f.call(c, "leaf");
            })
            .finish();
        b.entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn search_decoder_recovers_simple_contexts() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut enc = BreadcrumbsEncoder::from_plan(&plan, PccWidth::Bits64, 1);
        let mut vm = Vm::new(&p, VmConfig::default());
        let mut log = EventLog::default();
        vm.run(&mut enc, &mut log).unwrap();
        assert_eq!(log.events.len(), 2);

        let decoder = BreadcrumbsDecoder::new(&plan, PccWidth::Bits64);
        let Capture::Pcc(v) = log.events[0].2 else {
            unreachable!()
        };
        let (outcome, explored) = decoder.decode(log.events[0].1, v);
        match outcome {
            BreadcrumbsOutcome::Unique(path) => {
                assert_eq!(path.len(), 3); // main -> mid -> leaf
            }
            other => panic!("expected unique decode, got {other:?}"),
        }
        assert!(explored > 0);
    }

    #[test]
    fn crumbs_are_recorded_at_cold_sites() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut enc = BreadcrumbsEncoder::from_plan(&plan, PccWidth::Bits64, 1);
        let mut vm = Vm::new(&p, VmConfig::default());
        let mut log = EventLog::default();
        vm.run(&mut enc, &mut log).unwrap();
        assert_eq!(enc.crumbs().len(), 3); // every call records
        assert!(enc.counts().pushes >= 3);
        assert!(enc.counts().hashes >= 3);
    }

    #[test]
    fn wrong_value_is_not_found() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let decoder = BreadcrumbsDecoder::new(&plan, PccWidth::Bits64);
        let leaf = p
            .declared_method(
                p.class_by_name("C").unwrap(),
                p.symbols().lookup("leaf").unwrap(),
            )
            .unwrap();
        let (outcome, _) = decoder.decode(leaf, 0xDEAD_BEEF);
        assert_eq!(outcome, BreadcrumbsOutcome::NotFound);
    }

    #[test]
    fn crumbs_prune_the_search() {
        let p = program();
        let plan = EncodingPlan::analyze(&p, &PlanConfig::default()).unwrap();
        let mut enc = BreadcrumbsEncoder::from_plan(&plan, PccWidth::Bits64, 1);
        let mut vm = Vm::new(&p, VmConfig::default());
        let mut log = EventLog::default();
        vm.run(&mut enc, &mut log).unwrap();

        let decoder = BreadcrumbsDecoder::new(&plan, PccWidth::Bits64);
        let Capture::Pcc(v) = log.events[0].2 else {
            unreachable!()
        };
        let at = log.events[0].1;
        let (plain, plain_states) = decoder.decode(at, v);
        let (pruned, pruned_states) =
            decoder.decode_with_crumbs(at, v, enc.cold_sites(), enc.crumbs());
        // Both find the unique path; the crumb-pruned search never explores
        // more states.
        assert!(matches!(plain, BreadcrumbsOutcome::Unique(_)));
        assert_eq!(plain, pruned);
        assert!(pruned_states <= plain_states);
        // A crumb-pruned decode of a value inconsistent with the crumbs
        // fails fast instead of wandering.
        let (bogus, _) = decoder.decode_with_crumbs(at, v ^ 0xF0F0, enc.cold_sites(), enc.crumbs());
        assert!(!matches!(bogus, BreadcrumbsOutcome::Unique(_)));
    }

    #[test]
    fn inverse_of_three_is_correct() {
        assert_eq!(3u64.wrapping_mul(0xAAAA_AAAA_AAAA_AAAB), 1);
    }
}
