//! # deltapath-telemetry
//!
//! The observability substrate for the DeltaPath reproduction: structured
//! tracing, low-overhead metrics and machine-readable run reports, built
//! entirely on `std` (the offline build environment cannot fetch crates,
//! and the hot paths being measured cannot afford a heavyweight stack).
//!
//! Four layers:
//!
//! * **Metrics** ([`Counter`], [`MaxGauge`], [`Log2Histogram`]) — atomic,
//!   lock-free, saturating primitives cheap enough for always-on use.
//! * **Trace** ([`EventTrace`]) — a bounded ring buffer of spans and point
//!   events with monotonic sequence numbers and a dropped-events counter,
//!   so memory stays fixed no matter how long a run goes.
//! * **Sink** ([`Telemetry`]) — the trait instrumented code talks to.
//!   [`NullTelemetry`] keeps the uninstrumented path at zero cost (its
//!   `enabled()` gate lets callers skip clocks and name formatting);
//!   [`Recorder`] accumulates everything in memory.
//! * **Export** ([`RunReport`]) — a frozen snapshot with a stable schema
//!   ([`RUN_REPORT_SCHEMA`]) that serializes to JSON or JSON lines via a
//!   hand-rolled [`Json`] value that round-trips `u64` exactly.
//!
//! # Example
//!
//! ```
//! use deltapath_telemetry::{Recorder, RunReport, SpanTimer, Telemetry};
//!
//! let sink = Recorder::new();
//! let timer = SpanTimer::start(&sink);
//! sink.counter_add("ops.delta.adds", 3);
//! sink.gauge_max("encoder.delta.stack_hwm", 12);
//! timer.finish(&sink, "vm.run", &[("calls", 3)]);
//!
//! let report = sink.report("example").with_meta("encoder", "delta");
//! let parsed = RunReport::from_json(&report.to_json())?;
//! assert_eq!(parsed.counter("ops.delta.adds"), Some(3));
//! assert_eq!(parsed, report);
//! # Ok::<(), deltapath_telemetry::ReportError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
pub mod names;
mod report;
mod sink;
pub mod spans;
mod trace;

pub use json::{Json, JsonError};
pub use metrics::{log2_bucket, log2_bucket_limit, Counter, Log2Histogram, MaxGauge, LOG2_BUCKETS};
pub use report::{
    HistogramSnapshot, ReportError, RunReport, DIFF_REPORT_SCHEMA, LINT_REPORT_SCHEMA,
    RUN_REPORT_SCHEMA,
};
pub use sink::{NullTelemetry, Recorder, ScopedSpan, SpanTimer, Telemetry};
pub use spans::{
    FoldedParseError, FoldedStacks, Lane, LaneSnapshot, SpanEvent, SpanNode, SpanProfiler,
    SpanSnapshot, SpanTree, DEFAULT_LANE_CAPACITY, TRACE_SCHEMA,
};
pub use trace::{EventTrace, TraceEvent, DEFAULT_TRACE_CAPACITY};
