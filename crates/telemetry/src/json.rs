//! A hand-rolled JSON value, serializer and parser.
//!
//! The offline build environment rules out `serde`, and the telemetry
//! export format is small and fixed, so this module implements exactly the
//! JSON subset the run reports need: objects with ordered keys, arrays,
//! strings with full escape handling, 128-bit integers (so `u64` metric
//! values round-trip exactly — floats would lose precision above 2^53),
//! floats, booleans and null.

use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source). `i128`
    /// covers the full `u64` and `i64` ranges losslessly.
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (reports serialize sorted
    /// maps, so order is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Json::Int(v as i128)
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object slice of `(key, value)` pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes into `out` (compact, no insignificant whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // `{}` prints integral floats without a decimal point;
                    // keep the float/int distinction through a round-trip.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes to a compact string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte position on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal (quotes and escapes included).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl Error for JsonError {}

/// Maximum nesting depth accepted by the parser (reports nest 4 levels;
/// the bound guards against stack exhaustion on adversarial input).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                0x00..=0x1f => return Err(self.err("unescaped control character")),
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let Some(byte) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let high = self.hex4()?;
                if (0xD800..0xDC00).contains(&high) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let c = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&high) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(high).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("malformed integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_json()).expect("round-trip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(1.5),
            Json::Float(1e300),
            Json::Str(String::new()),
            Json::Str("plain".to_owned()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn u64_precision_is_preserved() {
        // Would fail under f64-only number handling (2^53 limit).
        let v = Json::from_u64(u64::MAX);
        assert_eq!(v.to_json(), "18446744073709551615");
        assert_eq!(roundtrip(&v).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let nasty =
            "quote:\" backslash:\\ newline:\n tab:\t nul:\u{0} bell:\u{7} unicode:✓ emoji:🦀";
        let v = Json::Str(nasty.to_owned());
        let text = v.to_json();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0000"));
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::Str("🦀".to_owned()));
        assert!(Json::parse(r#""\ud83e""#).is_err());
        assert!(Json::parse(r#""\udd80""#).is_err());
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = Json::Obj(vec![
            ("z".to_owned(), Json::Arr(vec![Json::Int(1), Json::Null])),
            (
                "a".to_owned(),
                Json::Obj(vec![("k".to_owned(), Json::Str("v".to_owned()))]),
            ),
        ]);
        let parsed = roundtrip(&v);
        assert_eq!(parsed, v);
        // Order preserved: "z" first.
        assert_eq!(parsed.as_obj().unwrap()[0].0, "z");
        assert_eq!(
            v.get("a").and_then(|a| a.get("k")).and_then(Json::as_str),
            Some("v")
        );
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "01x",
            "[1 2]",
            "nul",
            "{,}",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.position <= bad.len());
        }
        assert!(Json::parse("[[[[").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_json(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let v = Json::Float(2.0);
        assert_eq!(v.to_json(), "2.0");
        assert_eq!(roundtrip(&v), v);
    }
}
