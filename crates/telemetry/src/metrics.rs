//! Atomic metric primitives: counters, max gauges and log2 histograms.
//!
//! Everything here is lock-free and shared by reference (`&self` methods),
//! so hot paths can record from multiple threads without coordination.
//! Relaxed ordering is sufficient throughout: metrics are monotonic
//! accumulators whose values are only *read* after the measured work
//! completes (publication happens via the joins/locks of the surrounding
//! program, not via the metric itself).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        if delta == 0 {
            return;
        }
        // fetch_add would wrap on overflow; a saturating CAS loop keeps
        // long-run totals pinned at the ceiling instead of resetting.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(delta);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that keeps the maximum value it has observed (a high-water
/// mark).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the gauge to `value` if it is a new maximum.
    pub fn observe(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The maximum observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets of a [`Log2Histogram`]: one for zero plus one per
/// possible bit width of a `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket base-2 histogram over `u64` values.
///
/// Bucket 0 counts zeros; bucket `i` (1..=64) counts values in
/// `[2^(i-1), 2^i - 1]`. Fixed buckets mean recording is one index
/// computation plus one atomic increment — cheap enough for always-on
/// latency and depth accounting.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index `value` falls into.
pub fn log2_bucket(value: u64) -> usize {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    }
}

/// The largest value bucket `index` can hold (inclusive upper bound).
pub fn log2_bucket_limit(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates rather than wraps (e.g. repeated u64::MAX
        // latencies on a pathological run must not reset the total).
        let mut current = self.sum.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(value);
            match self.sum.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The count in bucket `index`.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// An inclusive upper bound for the `q`-quantile (`q` in `[0, 1]`):
    /// the limit of the first bucket at which the cumulative count reaches
    /// `q * count`. Returns 0 for an empty histogram.
    pub fn quantile_limit(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for i in 0..LOG2_BUCKETS {
            seen += self.bucket(i);
            if seen >= threshold {
                return log2_bucket_limit(i);
            }
        }
        u64::MAX
    }

    /// A point-in-time copy: `(count, sum, non-empty (bucket, count)
    /// pairs)` in bucket order.
    pub fn snapshot(&self) -> (u64, u64, Vec<(u8, u64)>) {
        let buckets = (0..LOG2_BUCKETS)
            .filter_map(|i| {
                let c = self.bucket(i);
                (c > 0).then_some((i as u8, c))
            })
            .collect();
        (self.count(), self.sum(), buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_and_saturates() {
        let c = Counter::new();
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_keeps_maximum() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(7);
        g.observe(5);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries() {
        // The satellite-mandated boundary cases: 0, 1, powers of two,
        // u64::MAX.
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket((1 << 31) - 1), 31);
        assert_eq!(log2_bucket(1 << 31), 32);
        assert_eq!(log2_bucket(u64::MAX), 64);
        assert_eq!(log2_bucket(1u64 << 63), 64);
        assert_eq!(log2_bucket((1u64 << 63) - 1), 63);
        // Limits are inclusive upper bounds of their bucket.
        assert_eq!(log2_bucket_limit(0), 0);
        assert_eq!(log2_bucket_limit(1), 1);
        assert_eq!(log2_bucket_limit(2), 3);
        assert_eq!(log2_bucket_limit(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            assert!(v <= log2_bucket_limit(log2_bucket(v)));
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Log2Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), u64::MAX); // saturated by the MAX observation
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(64), 1);
        let (count, sum, buckets) = h.snapshot();
        assert_eq!(count, 7);
        assert_eq!(sum, u64::MAX);
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 2), (4, 1), (64, 1)]);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000); // bucket 10, limit 1023
        assert_eq!(h.quantile_limit(0.5), 1);
        assert_eq!(h.quantile_limit(0.99), 1);
        assert_eq!(h.quantile_limit(1.0), 1023);
        assert_eq!(Log2Histogram::new().quantile_limit(0.5), 0);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Arc::new(Counter::new());
        let h = Arc::new(Log2Histogram::new());
        let g = Arc::new(MaxGauge::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let (c, h, g) = (Arc::clone(&c), Arc::clone(&h), Arc::clone(&g));
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(i % 17);
                        g.observe(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(g.get(), 7 * 10_000 + 9_999);
    }
}
