//! The [`Telemetry`] sink trait, the zero-cost [`NullTelemetry`] sink and
//! the in-memory [`Recorder`].
//!
//! Instrumented code talks to `&dyn Telemetry` and never knows whether
//! anything is listening. The two shipped implementations sit at the
//! extremes: [`NullTelemetry`] is compiled-out silence (its `enabled()`
//! returns `false`, so callers skip even formatting metric names), and
//! [`Recorder`] accumulates everything into atomic metrics plus a bounded
//! event trace, ready to be exported as a [`RunReport`].
//!
//! [`RunReport`]: crate::report::RunReport

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Log2Histogram, MaxGauge};
use crate::trace::{EventTrace, TraceEvent, DEFAULT_TRACE_CAPACITY};

/// A sink for metrics and trace events.
///
/// All methods take `&self`; implementations must be safe to call from
/// multiple threads. Metric names are dot-separated lowercase paths
/// (`"ops.delta.adds"`, `"vm.run_ns"`); the names emitted by this
/// workspace are a stable interface documented in DESIGN.md.
pub trait Telemetry: Send + Sync {
    /// Whether this sink records anything. Hot paths may (and the VM does)
    /// use this to skip measurement work entirely — an implementation
    /// returning `false` promises every other method is a no-op.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the counter `name`.
    fn counter_add(&self, name: &str, delta: u64);

    /// Raises the high-water-mark gauge `name` to `value` if larger.
    fn gauge_max(&self, name: &str, value: u64);

    /// Records `value` into the log2 histogram `name`.
    fn observe(&self, name: &str, value: u64);

    /// Records a point event with structured attributes.
    fn event(&self, name: &str, attrs: &[(&str, u64)]);

    /// Records a completed span: a named piece of work that took
    /// `duration_ns`. Implementations also feed the duration into the
    /// histogram `name` so spans get latency distributions for free.
    fn span(&self, name: &str, duration_ns: u64, attrs: &[(&str, u64)]);

    /// Opens a nested span on the calling thread. Flat sinks (the default)
    /// ignore opens and only see the matching [`Telemetry::span_close`];
    /// hierarchical sinks such as `SpanProfiler` use the open/close pair to
    /// maintain per-thread span stacks. Every `span_open` must be balanced
    /// by a `span_close` with the same name on the same thread ([`ScopedSpan`]
    /// guarantees this even across early returns).
    fn span_open(&self, _name: &str) {}

    /// Closes the innermost open span named `name` on the calling thread.
    /// The default forwards to [`Telemetry::span`], so flat sinks record
    /// nested spans exactly like flat ones.
    fn span_close(&self, name: &str, duration_ns: u64, attrs: &[(&str, u64)]) {
        self.span(name, duration_ns, attrs);
    }
}

/// The no-op sink: records nothing, costs nothing.
///
/// `NullTelemetry::enabled()` is `false`, which instrumented code uses to
/// bypass clocks and name formatting, keeping the uninstrumented hot path
/// identical to a build without telemetry at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add(&self, _name: &str, _delta: u64) {}

    fn gauge_max(&self, _name: &str, _value: u64) {}

    fn observe(&self, _name: &str, _value: u64) {}

    fn event(&self, _name: &str, _attrs: &[(&str, u64)]) {}

    fn span(&self, _name: &str, _duration_ns: u64, _attrs: &[(&str, u64)]) {}
}

/// An in-memory sink that accumulates metrics and buffers trace events.
///
/// Metric storage is a name-keyed registry of [`Arc`]'d atomics: the
/// registry lock is taken only on first touch of a name (and by
/// [`Recorder::counter`]-style accessors, which hand the `Arc` back so
/// steady-state increments are lock-free).
#[derive(Debug, Default)]
pub struct Recorder {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<MaxGauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Log2Histogram>>>,
    trace: EventTrace,
}

impl Recorder {
    /// A recorder with the default trace capacity
    /// ([`DEFAULT_TRACE_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recorder whose event trace keeps at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            trace: EventTrace::with_capacity(capacity),
        }
    }

    /// The counter registered under `name`, created at zero on first use.
    /// Hold the returned `Arc` to increment without touching the registry
    /// again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The max gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<MaxGauge> {
        let mut map = self.gauges.lock().expect("gauge registry");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The event trace backing this recorder.
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }

    /// Sorted `(name, value)` pairs of every counter.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Sorted `(name, value)` pairs of every gauge.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .expect("gauge registry")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Sorted `(name, (count, sum, buckets))` snapshots of every
    /// histogram.
    #[allow(clippy::type_complexity)]
    pub fn histogram_snapshots(&self) -> Vec<(String, (u64, u64, Vec<(u8, u64)>))> {
        self.histograms
            .lock()
            .expect("histogram registry")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// A copy of the buffered trace events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.trace.snapshot()
    }
}

impl Telemetry for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.gauge(name).observe(value);
    }

    fn observe(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    fn event(&self, name: &str, attrs: &[(&str, u64)]) {
        self.trace.push(name, None, attrs);
    }

    fn span(&self, name: &str, duration_ns: u64, attrs: &[(&str, u64)]) {
        self.trace.push(name, Some(duration_ns), attrs);
        self.histogram(name).record(duration_ns);
    }
}

/// Timing helper for span emission.
///
/// [`SpanTimer::start`] reads the clock only when the sink is enabled;
/// against [`NullTelemetry`] both `start` and `finish` reduce to a branch
/// on a `None`.
#[derive(Debug)]
pub struct SpanTimer {
    started: Option<Instant>,
}

impl SpanTimer {
    /// Starts timing if `sink` is enabled, otherwise records nothing.
    pub fn start(sink: &dyn Telemetry) -> Self {
        Self {
            started: sink.enabled().then(Instant::now),
        }
    }

    /// Emits the span `name` with the elapsed time and `attrs`. A no-op if
    /// the timer never started (disabled sink).
    pub fn finish(self, sink: &dyn Telemetry, name: &str, attrs: &[(&str, u64)]) {
        if let Some(started) = self.started {
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.span(name, elapsed, attrs);
        }
    }
}

/// RAII guard for *nested* span emission.
///
/// `enter` calls [`Telemetry::span_open`] and starts the clock (only when
/// the sink is enabled); `finish` — or `Drop`, on early return — calls
/// [`Telemetry::span_close`], so the open/close pairing hierarchical sinks
/// rely on can never be unbalanced by a `?`. Against [`NullTelemetry`]
/// both ends reduce to a branch on a `None`.
pub struct ScopedSpan<'a> {
    sink: &'a dyn Telemetry,
    name: &'a str,
    started: Option<Instant>,
}

impl<'a> ScopedSpan<'a> {
    /// Opens the span `name` on `sink` and starts timing (a no-op for
    /// disabled sinks).
    pub fn enter(sink: &'a dyn Telemetry, name: &'a str) -> Self {
        let started = sink.enabled().then(|| {
            sink.span_open(name);
            Instant::now()
        });
        Self {
            sink,
            name,
            started,
        }
    }

    /// Closes the span with structured attributes. Prefer this over
    /// dropping: `Drop` closes the span too, but without attributes.
    pub fn finish(mut self, attrs: &[(&str, u64)]) {
        self.close(attrs);
    }

    fn close(&mut self, attrs: &[(&str, u64)]) {
        if let Some(started) = self.started.take() {
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.span_close(self.name, elapsed, attrs);
        }
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        self.close(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullTelemetry;
        assert!(!sink.enabled());
        sink.counter_add("x", 1);
        sink.gauge_max("x", 1);
        sink.observe("x", 1);
        sink.event("x", &[("a", 1)]);
        sink.span("x", 1, &[]);
    }

    #[test]
    fn recorder_accumulates_by_name() {
        let r = Recorder::new();
        r.counter_add("ops.adds", 3);
        r.counter_add("ops.adds", 4);
        r.counter_add("ops.subs", 1);
        r.gauge_max("stack.hwm", 5);
        r.gauge_max("stack.hwm", 2);
        r.observe("depth", 4);
        r.observe("depth", 1024);
        assert_eq!(
            r.counter_values(),
            vec![("ops.adds".to_owned(), 7), ("ops.subs".to_owned(), 1)]
        );
        assert_eq!(r.gauge_values(), vec![("stack.hwm".to_owned(), 5)]);
        let hists = r.histogram_snapshots();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].1 .0, 2);
        assert_eq!(hists[0].1 .1, 1028);
    }

    #[test]
    fn spans_land_in_trace_and_histogram() {
        let r = Recorder::new();
        r.span("plan.analyze", 1_500, &[("nodes", 10)]);
        r.event("vm.start", &[]);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "plan.analyze");
        assert_eq!(events[0].duration_ns, Some(1_500));
        assert_eq!(events[1].duration_ns, None);
        assert_eq!(r.histogram("plan.analyze").count(), 1);
    }

    #[test]
    fn arc_handles_stay_live_across_registry_reads() {
        let r = Recorder::new();
        let c = r.counter("hot");
        c.add(10);
        c.add(5);
        assert_eq!(r.counter_values(), vec![("hot".to_owned(), 15)]);
    }

    #[test]
    fn scoped_span_closes_on_finish_and_on_drop() {
        let r = Recorder::new();
        let span = ScopedSpan::enter(&r, "outer");
        span.finish(&[("k", 1)]);
        {
            let _span = ScopedSpan::enter(&r, "dropped");
            // early return path: the guard closes the span with no attrs.
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].attrs, vec![("k".to_owned(), 1)]);
        assert_eq!(events[1].name, "dropped");
        assert!(events[1].attrs.is_empty());
        assert_eq!(r.histogram("dropped").count(), 1);

        // Inert against the null sink: no clock, no records.
        let span = ScopedSpan::enter(&NullTelemetry, "x");
        drop(span);
    }

    #[test]
    fn span_timer_is_inert_against_null_sink() {
        let timer = SpanTimer::start(&NullTelemetry);
        timer.finish(&NullTelemetry, "x", &[]);

        let r = Recorder::new();
        let timer = SpanTimer::start(&r);
        timer.finish(&r, "timed", &[("k", 9)]);
        let events = r.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].duration_ns.is_some());
        assert_eq!(events[0].attrs, vec![("k".to_owned(), 9)]);
    }
}
