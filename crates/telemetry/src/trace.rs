//! A bounded ring-buffer event trace.
//!
//! Spans and point events from analysis and runtime land here. The buffer
//! keeps the most recent `capacity` events and counts what it had to drop,
//! so a long-running process can leave tracing on permanently without
//! growing memory — the same contract as a flight recorder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity; enough for every span of a large analysis plus a
/// tail of runtime events.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One trace record: a completed span (with duration) or a point event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, assigned at record time; never reused,
    /// so gaps reveal where drops happened.
    pub seq: u64,
    /// Event name (dot-separated, e.g. `"algo2.territories"`). Names are a
    /// stable interface; see DESIGN.md's Observability section.
    pub name: String,
    /// Wall-clock duration for spans; `None` for point events.
    pub duration_ns: Option<u64>,
    /// Structured attributes (counts, sizes, indices).
    pub attrs: Vec<(String, u64)>,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s with a dropped-events
/// counter.
#[derive(Debug)]
pub struct EventTrace {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl EventTrace {
    /// A trace holding at most `capacity` events (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event, evicting the oldest one when full.
    pub fn push(&self, name: &str, duration_ns: Option<u64>, attrs: &[(&str, u64)]) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            name: name.to_owned(),
            duration_ns,
            attrs: attrs.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        };
        let mut ring = self.ring.lock().expect("trace lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let t = EventTrace::with_capacity(8);
        t.push("a", None, &[("x", 1)]);
        t.push("b", Some(250), &[]);
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].attrs, vec![("x".to_owned(), 1)]);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].duration_ns, Some(250));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn bounded_capacity_evicts_oldest() {
        let t = EventTrace::with_capacity(3);
        for i in 0..10 {
            t.push(&format!("e{i}"), None, &[]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let names: Vec<_> = t.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["e7", "e8", "e9"]);
        // Sequence numbers survive eviction: the gap records the drops.
        assert_eq!(t.snapshot()[0].seq, 7);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let t = EventTrace::with_capacity(0);
        t.push("only", None, &[]);
        t.push("newer", None, &[]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.snapshot()[0].name, "newer");
        assert_eq!(t.dropped(), 1);
    }
}
