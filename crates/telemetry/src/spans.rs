//! Hierarchical span profiling: per-thread span stacks, a name-keyed span
//! tree with cross-thread merge, and two exporters — Chrome trace-event
//! JSON (loadable in `chrome://tracing`/Perfetto) and folded-stack
//! flamegraph text (the `inferno`/`flamegraph.pl` input format).
//!
//! The flat [`Telemetry::span`] calls from PR 1 can say *that* a phase took
//! N µs; the types here say *where inside it*. Instrumented code opens and
//! closes spans through [`Telemetry::span_open`]/[`Telemetry::span_close`]
//! (always via the [`ScopedSpan`] guard); the [`SpanProfiler`] sink keeps
//! one [`Lane`] per thread, each maintaining a span stack, a bounded buffer
//! of completed [`SpanEvent`]s (for the Chrome timeline), and a [`SpanTree`]
//! (for aggregation). Trees from all lanes merge keyed by span *name*, so
//! the merged view is independent of thread interleaving — the property the
//! `DELTAPATH_STRESS_THREADS` determinism test pins.
//!
//! The deterministic core ([`Lane`], [`SpanTree`], [`FoldedStacks`]) is
//! driven by explicit timestamps and never reads a clock, which is what
//! makes the Chrome-trace golden test byte-stable; only [`SpanProfiler`]
//! owns an [`Instant`] epoch.
//!
//! [`ScopedSpan`]: crate::sink::ScopedSpan

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::Json;
use crate::sink::{Recorder, Telemetry};

/// Schema identifier embedded in Chrome trace exports.
pub const TRACE_SCHEMA: &str = "deltapath.trace.v2";

/// Default cap on buffered completed events per lane. Aggregation into the
/// span tree is unbounded (fixed size per distinct path); only the
/// timeline buffer is capped so memory stays fixed on long runs.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 14;

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

/// One aggregated node of a [`SpanTree`]: all completed spans with this
/// name under the same parent path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (`""` for the root).
    pub name: String,
    /// Completed spans aggregated into this node.
    pub count: u64,
    /// Total wall time across those spans, nanoseconds (includes child
    /// time; see [`SpanTree::folded`] for self-time).
    pub total_ns: u64,
    children: BTreeMap<String, usize>,
}

impl SpanNode {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            count: 0,
            total_ns: 0,
            children: BTreeMap::new(),
        }
    }
}

/// An arena-allocated tree aggregating spans by *path of names*.
///
/// Node 0 is the unnamed root. Children are name-keyed, so merging two
/// trees (or recording the same path twice) is commutative and
/// deterministic no matter the order threads finished in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
}

impl Default for SpanTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTree {
    /// An empty tree holding only the root.
    pub fn new() -> Self {
        Self {
            nodes: vec![SpanNode::new("")],
        }
    }

    /// The root node index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// The node at `index`.
    pub fn node(&self, index: usize) -> &SpanNode {
        &self.nodes[index]
    }

    /// Number of nodes, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds nothing but the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Sorted `(name, index)` children of the node at `index`.
    pub fn children(&self, index: usize) -> impl Iterator<Item = (&str, usize)> {
        self.nodes[index]
            .children
            .iter()
            .map(|(name, &ix)| (name.as_str(), ix))
    }

    /// The child of `parent` named `name`, created empty on first use.
    pub fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&ix) = self.nodes[parent].children.get(name) {
            return ix;
        }
        let ix = self.nodes.len();
        self.nodes.push(SpanNode::new(name));
        self.nodes[parent].children.insert(name.to_owned(), ix);
        ix
    }

    /// Adds `count` completed spans totalling `total_ns` at `path`
    /// (outermost name first), creating intermediate nodes as needed.
    pub fn record_path(&mut self, path: &[&str], count: u64, total_ns: u64) {
        let mut node = self.root();
        for name in path {
            node = self.child_of(node, name);
        }
        if node != self.root() {
            self.nodes[node].count = self.nodes[node].count.saturating_add(count);
            self.nodes[node].total_ns = self.nodes[node].total_ns.saturating_add(total_ns);
        }
    }

    /// Merges `other` into `self`, keyed by span name at every level.
    /// Commutative up to node allocation order, which no accessor exposes:
    /// `merge(a, b)` and `merge(b, a)` produce trees that compare equal
    /// through [`SpanTree::folded`] and path lookups.
    pub fn merge(&mut self, other: &SpanTree) {
        self.merge_node(self.root(), other, other.root());
    }

    fn merge_node(&mut self, into: usize, other: &SpanTree, from: usize) {
        self.nodes[into].count = self.nodes[into]
            .count
            .saturating_add(other.nodes[from].count);
        self.nodes[into].total_ns = self.nodes[into]
            .total_ns
            .saturating_add(other.nodes[from].total_ns);
        let child_names: Vec<(String, usize)> = other.nodes[from]
            .children
            .iter()
            .map(|(n, &ix)| (n.clone(), ix))
            .collect();
        for (name, from_child) in child_names {
            let into_child = self.child_of(into, &name);
            self.merge_node(into_child, other, from_child);
        }
    }

    /// Total time recorded at `path`, or `None` if the path was never
    /// recorded.
    pub fn total_at(&self, path: &[&str]) -> Option<(u64, u64)> {
        let mut node = self.root();
        for name in path {
            node = *self.nodes[node].children.get(*name)?;
        }
        Some((self.nodes[node].count, self.nodes[node].total_ns))
    }

    /// Folds the tree into flamegraph stacks weighted by *self time*
    /// (total minus child time, floored at zero), in nanoseconds. Zero
    /// weight frames are kept when they completed at least once so purely
    /// structural parents still appear in the flamegraph.
    pub fn folded(&self) -> FoldedStacks {
        let mut out = FoldedStacks::new();
        let mut path: Vec<String> = Vec::new();
        self.fold_node(self.root(), &mut path, &mut out);
        out
    }

    fn fold_node(&self, index: usize, path: &mut Vec<String>, out: &mut FoldedStacks) {
        let node = &self.nodes[index];
        if index != self.root() {
            path.push(node.name.clone());
            let child_total: u64 = node
                .children
                .values()
                .map(|&c| self.nodes[c].total_ns)
                .fold(0, u64::saturating_add);
            let self_ns = node.total_ns.saturating_sub(child_total);
            if node.count > 0 || self_ns > 0 {
                let frames: Vec<&str> = path.iter().map(String::as_str).collect();
                out.add_frames(&frames, self_ns);
            }
        }
        for &child in self.nodes[index].children.values() {
            self.fold_node(child, path, out);
        }
        if index != self.root() {
            path.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Lanes (per-thread recording)
// ---------------------------------------------------------------------------

/// One completed span on a lane's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Start, nanoseconds since the profiler epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
}

#[derive(Clone, Debug)]
struct OpenSpan {
    node: usize,
    name: String,
    start_ns: u64,
}

/// A single thread's span recorder: a span stack, an aggregation tree and
/// a bounded completed-event buffer.
///
/// Driven entirely by explicit timestamps so tests (and the golden
/// Chrome-trace fixture) are deterministic; [`SpanProfiler`] supplies real
/// clock readings.
#[derive(Clone, Debug)]
pub struct Lane {
    tree: SpanTree,
    stack: Vec<OpenSpan>,
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
    unbalanced: u64,
}

impl Default for Lane {
    fn default() -> Self {
        Self::new()
    }
}

impl Lane {
    /// A lane with the default event-buffer capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A lane buffering at most `capacity` completed events (aggregation
    /// into the tree is never dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            tree: SpanTree::new(),
            stack: Vec::new(),
            events: Vec::new(),
            capacity,
            dropped: 0,
            unbalanced: 0,
        }
    }

    /// Opens a span named `name` at `ts_ns` under the currently innermost
    /// open span.
    pub fn open(&mut self, name: &str, ts_ns: u64) {
        let parent = self.stack.last().map_or(self.tree.root(), |s| s.node);
        let node = self.tree.child_of(parent, name);
        self.stack.push(OpenSpan {
            node,
            name: name.to_owned(),
            start_ns: ts_ns,
        });
    }

    /// Closes the innermost open span named `name` at `ts_ns`. Spans left
    /// open above it are closed at the same instant (they missed their
    /// close — typically an instrumentation bug — and are counted in
    /// [`Lane::unbalanced`]); a close with no matching open is ignored and
    /// counted too.
    pub fn close(&mut self, name: &str, ts_ns: u64) {
        let Some(pos) = self.stack.iter().rposition(|s| s.name == name) else {
            self.unbalanced += 1;
            return;
        };
        self.unbalanced += u64::try_from(self.stack.len() - pos - 1).unwrap_or(u64::MAX);
        while self.stack.len() > pos {
            let open = self.stack.pop().expect("stack length checked");
            let depth = self.stack.len();
            self.complete(open, ts_ns, depth);
        }
    }

    /// Records an already-measured flat span (a [`Telemetry::span`] call)
    /// as a completed leaf under the currently innermost open span.
    /// `end_ts_ns` is when the span *finished*.
    pub fn leaf(&mut self, name: &str, duration_ns: u64, end_ts_ns: u64) {
        let parent = self.stack.last().map_or(self.tree.root(), |s| s.node);
        let node = self.tree.child_of(parent, name);
        let open = OpenSpan {
            node,
            name: name.to_owned(),
            start_ns: end_ts_ns.saturating_sub(duration_ns),
        };
        let depth = self.stack.len();
        self.complete(open, end_ts_ns, depth);
    }

    fn complete(&mut self, open: OpenSpan, end_ts_ns: u64, depth: usize) {
        let duration_ns = end_ts_ns.saturating_sub(open.start_ns);
        let node = &mut self.tree.nodes[open.node];
        node.count = node.count.saturating_add(1);
        node.total_ns = node.total_ns.saturating_add(duration_ns);
        if self.events.len() < self.capacity {
            self.events.push(SpanEvent {
                name: open.name,
                start_ns: open.start_ns,
                duration_ns,
                depth,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// The aggregation tree (completed spans only).
    pub fn tree(&self) -> &SpanTree {
        &self.tree
    }

    /// Completed events in completion order, oldest first.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Current open-span nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Opens without a matching close (or vice versa) seen so far.
    pub fn unbalanced(&self) -> u64 {
        self.unbalanced
    }
}

// ---------------------------------------------------------------------------
// Folded stacks
// ---------------------------------------------------------------------------

/// Flamegraph folded-stack format: one `frame;frame;frame weight` line per
/// distinct stack, the input format of `inferno` / `flamegraph.pl`.
///
/// Weights for identical stacks accumulate; rendering is sorted by stack,
/// so output is deterministic and [`FoldedStacks::parse`] round-trips
/// [`FoldedStacks::render`] exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    stacks: BTreeMap<String, u64>,
}

/// A malformed folded-stack line, reported by [`FoldedStacks::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoldedParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for FoldedParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "folded stacks line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FoldedParseError {}

impl FoldedStacks {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to the stack `path` (frames already joined with
    /// `';'`). Zero weights still create the line.
    pub fn add(&mut self, path: &str, weight: u64) {
        let slot = self.stacks.entry(path.to_owned()).or_insert(0);
        *slot = slot.saturating_add(weight);
    }

    /// Adds `weight` to the stack given as frames, outermost first.
    pub fn add_frames(&mut self, frames: &[&str], weight: u64) {
        self.add(&frames.join(";"), weight);
    }

    /// Accumulates every stack of `other` into `self`.
    pub fn merge(&mut self, other: &FoldedStacks) {
        for (path, &weight) in &other.stacks {
            self.add(path, weight);
        }
    }

    /// Sorted `(stack, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.stacks.iter().map(|(p, &w)| (p.as_str(), w))
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack was recorded.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.stacks
            .values()
            .fold(0, |acc, &w| acc.saturating_add(w))
    }

    /// Renders the folded-stack text: one `stack weight` line per entry,
    /// sorted by stack, trailing newline included (empty string when
    /// empty).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (path, weight) in &self.stacks {
            out.push_str(path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses folded-stack text (the [`FoldedStacks::render`] format;
    /// blank lines ignored, duplicate stacks accumulate).
    pub fn parse(text: &str) -> Result<Self, FoldedParseError> {
        let mut out = Self::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let Some((path, weight)) = line.rsplit_once(' ') else {
                return Err(FoldedParseError {
                    line: i + 1,
                    message: "missing ' <weight>' suffix".to_owned(),
                });
            };
            if path.is_empty() {
                return Err(FoldedParseError {
                    line: i + 1,
                    message: "empty stack".to_owned(),
                });
            }
            let weight: u64 = weight.parse().map_err(|e| FoldedParseError {
                line: i + 1,
                message: format!("bad weight {weight:?}: {e}"),
            })?;
            out.add(path, weight);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Profiler sink
// ---------------------------------------------------------------------------

/// A frozen view of one lane: its label, completed events and drop count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Stable label (`"main"` for the profiler's creating thread,
    /// `"thread-N"` in registration order otherwise).
    pub label: String,
    /// Completed events, completion order.
    pub events: Vec<SpanEvent>,
    /// Events discarded because the lane buffer was full.
    pub dropped: u64,
    /// Unbalanced open/close pairs observed.
    pub unbalanced: u64,
}

/// A frozen, exportable view of a [`SpanProfiler`]: the cross-thread
/// merged tree plus each lane's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span tree merged across all lanes, keyed by name at every level.
    pub tree: SpanTree,
    /// Per-thread timelines, sorted by label.
    pub lanes: Vec<LaneSnapshot>,
}

impl SpanSnapshot {
    /// Folded flamegraph stacks of the merged tree (self-time weights,
    /// nanoseconds).
    pub fn folded(&self) -> FoldedStacks {
        self.tree.folded()
    }

    /// Renders the snapshot as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto "JSON Array Format"): one `ph:"M"`
    /// thread-name metadata record per lane followed by its `ph:"X"`
    /// complete events, timestamps in fractional microseconds. The schema
    /// tag [`TRACE_SCHEMA`] rides in `otherData`.
    pub fn chrome_trace(&self, process: &str) -> String {
        fn micros(ns: u64) -> Json {
            // Chrome traces use double-precision microseconds; ns / 1000
            // as f64 keeps sub-microsecond spans visible.
            Json::Float(ns as f64 / 1000.0)
        }
        let mut events = Vec::new();
        for (lane_ix, lane) in self.lanes.iter().enumerate() {
            let tid = u64::try_from(lane_ix).unwrap_or(u64::MAX);
            events.push(Json::Obj(vec![
                ("ph".to_owned(), Json::Str("M".to_owned())),
                ("pid".to_owned(), Json::Int(1)),
                ("tid".to_owned(), Json::from_u64(tid)),
                ("name".to_owned(), Json::Str("thread_name".to_owned())),
                (
                    "args".to_owned(),
                    Json::Obj(vec![("name".to_owned(), Json::Str(lane.label.clone()))]),
                ),
            ]));
            for event in &lane.events {
                events.push(Json::Obj(vec![
                    ("ph".to_owned(), Json::Str("X".to_owned())),
                    ("pid".to_owned(), Json::Int(1)),
                    ("tid".to_owned(), Json::from_u64(tid)),
                    ("name".to_owned(), Json::Str(event.name.clone())),
                    ("ts".to_owned(), micros(event.start_ns)),
                    ("dur".to_owned(), micros(event.duration_ns)),
                ]));
            }
        }
        Json::Obj(vec![
            (
                "otherData".to_owned(),
                Json::Obj(vec![
                    ("schema".to_owned(), Json::Str(TRACE_SCHEMA.to_owned())),
                    ("process".to_owned(), Json::Str(process.to_owned())),
                ]),
            ),
            ("traceEvents".to_owned(), Json::Arr(events)),
        ])
        .to_json()
    }
}

#[derive(Debug, Default)]
struct LaneTable {
    by_thread: HashMap<ThreadId, usize>,
    lanes: Vec<Lane>,
    labels: Vec<String>,
}

/// A hierarchical [`Telemetry`] sink: metrics and flat spans accumulate in
/// an inner [`Recorder`] exactly as before, while open/close span pairs
/// additionally build one [`Lane`] per calling thread.
///
/// The lane table sits behind one mutex; this sink is meant for profiling
/// runs (planner phases, audits, collector merges), not for per-hook hot
/// paths — those stay on counter sampling (see `profile.hook_ns`).
#[derive(Debug)]
pub struct SpanProfiler {
    epoch: Instant,
    creator: ThreadId,
    inner: Recorder,
    lanes: Mutex<LaneTable>,
    lane_capacity: usize,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProfiler {
    /// A profiler with default lane and trace capacities, its epoch set to
    /// now. The creating thread's lane is labelled `"main"`.
    pub fn new() -> Self {
        Self::with_lane_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// A profiler buffering at most `capacity` completed events per lane.
    pub fn with_lane_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            creator: std::thread::current().id(),
            inner: Recorder::new(),
            lanes: Mutex::new(LaneTable::default()),
            lane_capacity: capacity,
        }
    }

    /// The inner metrics recorder (counters, gauges, histograms, flat
    /// trace) — everything a plain [`Recorder`] would have captured.
    pub fn recorder(&self) -> &Recorder {
        &self.inner
    }

    /// Nanoseconds since the profiler was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn with_lane<R>(&self, f: impl FnOnce(&mut Lane) -> R) -> R {
        let mut table = self.lanes.lock().expect("lane table");
        let tid = std::thread::current().id();
        let ix = match table.by_thread.get(&tid) {
            Some(&ix) => ix,
            None => {
                let ix = table.lanes.len();
                let label = if tid == self.creator {
                    "main".to_owned()
                } else {
                    format!("thread-{ix}")
                };
                table.by_thread.insert(tid, ix);
                table.lanes.push(Lane::with_capacity(self.lane_capacity));
                table.labels.push(label);
                ix
            }
        };
        f(&mut table.lanes[ix])
    }

    /// Freezes metrics into a [`RunReport`] with the profiler's own
    /// `span.*` health gauges stamped in (lane count, dropped events,
    /// unbalanced open/close pairs). Idempotent: gauges are high-water
    /// marks, so repeated reports don't double-count.
    ///
    /// [`RunReport`]: crate::report::RunReport
    pub fn report(&self, name: &str) -> crate::report::RunReport {
        let snapshot = self.snapshot();
        self.inner.gauge_max(
            crate::names::SPAN_LANES,
            u64::try_from(snapshot.lanes.len()).unwrap_or(u64::MAX),
        );
        let (dropped, unbalanced) = snapshot.lanes.iter().fold((0u64, 0u64), |(d, u), lane| {
            (
                d.saturating_add(lane.dropped),
                u.saturating_add(lane.unbalanced),
            )
        });
        self.inner.gauge_max(crate::names::SPAN_DROPPED, dropped);
        self.inner
            .gauge_max(crate::names::SPAN_UNBALANCED, unbalanced);
        self.inner.report(name)
    }

    /// Freezes the profiler into an exportable [`SpanSnapshot`]: lanes
    /// sorted by label, trees merged by name. Open spans are not counted —
    /// snapshot after the work being profiled has finished.
    pub fn snapshot(&self) -> SpanSnapshot {
        let table = self.lanes.lock().expect("lane table");
        let mut lanes: Vec<(String, &Lane)> = table
            .labels
            .iter()
            .cloned()
            .zip(table.lanes.iter())
            .collect();
        lanes.sort_by(|a, b| a.0.cmp(&b.0));
        let mut tree = SpanTree::new();
        let mut out = Vec::with_capacity(lanes.len());
        for (label, lane) in lanes {
            tree.merge(lane.tree());
            out.push(LaneSnapshot {
                label,
                events: lane.events().to_vec(),
                dropped: lane.dropped(),
                unbalanced: lane.unbalanced(),
            });
        }
        SpanSnapshot { tree, lanes: out }
    }
}

impl Telemetry for SpanProfiler {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.inner.counter_add(name, delta);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.inner.gauge_max(name, value);
    }

    fn observe(&self, name: &str, value: u64) {
        self.inner.observe(name, value);
    }

    fn event(&self, name: &str, attrs: &[(&str, u64)]) {
        self.inner.event(name, attrs);
    }

    fn span(&self, name: &str, duration_ns: u64, attrs: &[(&str, u64)]) {
        self.inner.span(name, duration_ns, attrs);
        let now = self.now_ns();
        self.with_lane(|lane| lane.leaf(name, duration_ns, now));
    }

    fn span_open(&self, name: &str) {
        let now = self.now_ns();
        self.with_lane(|lane| lane.open(name, now));
    }

    fn span_close(&self, name: &str, duration_ns: u64, attrs: &[(&str, u64)]) {
        self.inner.span(name, duration_ns, attrs);
        let now = self.now_ns();
        self.with_lane(|lane| lane.close(name, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ScopedSpan;

    #[test]
    fn lane_builds_nested_tree_from_timestamps() {
        let mut lane = Lane::new();
        lane.open("plan.analyze", 0);
        lane.open("plan.back_edges", 10);
        lane.close("plan.back_edges", 30);
        lane.open("algo2.analyze", 30);
        lane.close("algo2.analyze", 90);
        lane.close("plan.analyze", 100);

        assert_eq!(lane.depth(), 0);
        assert_eq!(lane.unbalanced(), 0);
        let tree = lane.tree();
        assert_eq!(tree.total_at(&["plan.analyze"]), Some((1, 100)));
        assert_eq!(
            tree.total_at(&["plan.analyze", "plan.back_edges"]),
            Some((1, 20))
        );
        assert_eq!(
            tree.total_at(&["plan.analyze", "algo2.analyze"]),
            Some((1, 60))
        );
        assert_eq!(tree.total_at(&["algo2.analyze"]), None);

        // Self time: 100 total − 20 − 60 = 20 at the parent.
        let folded = tree.folded();
        let lines: Vec<(&str, u64)> = folded.iter().collect();
        assert_eq!(
            lines,
            vec![
                ("plan.analyze", 20),
                ("plan.analyze;algo2.analyze", 60),
                ("plan.analyze;plan.back_edges", 20),
            ]
        );
    }

    #[test]
    fn lane_survives_unbalanced_closes() {
        let mut lane = Lane::new();
        lane.close("never.opened", 5);
        assert_eq!(lane.unbalanced(), 1);
        lane.open("a", 0);
        lane.open("b", 1);
        // Closing "a" force-closes the dangling "b" at the same instant.
        lane.close("a", 10);
        assert_eq!(lane.unbalanced(), 2);
        assert_eq!(lane.depth(), 0);
        assert_eq!(lane.tree().total_at(&["a", "b"]), Some((1, 9)));
        assert_eq!(lane.tree().total_at(&["a"]), Some((1, 10)));
    }

    #[test]
    fn lane_caps_events_but_not_tree() {
        let mut lane = Lane::with_capacity(2);
        for i in 0..5 {
            lane.open("x", i * 10);
            lane.close("x", i * 10 + 1);
        }
        assert_eq!(lane.events().len(), 2);
        assert_eq!(lane.dropped(), 3);
        assert_eq!(lane.tree().total_at(&["x"]), Some((5, 5)));
    }

    #[test]
    fn tree_merge_is_order_independent() {
        let mut a = SpanTree::new();
        a.record_path(&["run", "flush"], 2, 100);
        a.record_path(&["run"], 1, 500);
        let mut b = SpanTree::new();
        b.record_path(&["run", "replay"], 1, 300);
        b.record_path(&["audit"], 4, 40);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.folded(), ba.folded());
        assert_eq!(ab.total_at(&["run"]), Some((1, 500)));
        assert_eq!(ab.total_at(&["run", "flush"]), Some((2, 100)));
        assert_eq!(ab.total_at(&["run", "replay"]), Some((1, 300)));
        assert_eq!(ab.total_at(&["audit"]), Some((4, 40)));
    }

    #[test]
    fn folded_stacks_round_trip_render_parse() {
        let mut f = FoldedStacks::new();
        f.add_frames(&["main", "vm.run"], 120);
        f.add("main;vm.run", 30);
        f.add("main", 7);
        let text = f.render();
        assert_eq!(text, "main 7\nmain;vm.run 150\n");
        let parsed = FoldedStacks::parse(&text).expect("round trip");
        assert_eq!(parsed, f);
        assert_eq!(parsed.total(), 157);

        assert!(FoldedStacks::parse("no-weight\n").is_err());
        assert!(FoldedStacks::parse(" 12\n").is_err());
        assert!(FoldedStacks::parse("a;b twelve\n").is_err());
        assert!(FoldedStacks::parse("\n\n").expect("blank ok").is_empty());
    }

    #[test]
    fn profiler_nests_scoped_spans_and_flat_spans() {
        let p = SpanProfiler::new();
        {
            let outer = ScopedSpan::enter(&p, "outer");
            p.span("leaf", 50, &[]);
            {
                let inner = ScopedSpan::enter(&p, "inner");
                inner.finish(&[("k", 1)]);
            }
            outer.finish(&[]);
        }
        let snap = p.snapshot();
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.lanes[0].label, "main");
        assert_eq!(snap.lanes[0].unbalanced, 0);
        assert!(snap.tree.total_at(&["outer"]).is_some());
        assert!(snap.tree.total_at(&["outer", "leaf"]).is_some());
        assert!(snap.tree.total_at(&["outer", "inner"]).is_some());
        assert!(snap.tree.total_at(&["inner"]).is_none());
        // The flat trace still captured everything for RunReport export.
        assert_eq!(p.recorder().events().len(), 3);
    }

    #[test]
    fn profiler_merges_worker_lanes_by_name() {
        let p = SpanProfiler::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let span = ScopedSpan::enter(&p, "walk");
                    span.finish(&[]);
                });
            }
        });
        let snap = p.snapshot();
        assert_eq!(snap.lanes.len(), 4);
        let (count, _) = snap.tree.total_at(&["walk"]).expect("merged");
        assert_eq!(count, 4);
    }
}
