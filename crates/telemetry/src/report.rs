//! Machine-readable run reports.
//!
//! A [`RunReport`] is the frozen export of a [`Recorder`]: every counter,
//! gauge and histogram plus the buffered trace events, tagged with a
//! schema identifier so downstream tooling can detect format drift. It
//! serializes two ways:
//!
//! - [`RunReport::to_json`] — one JSON document, convenient for humans and
//!   for `deltapath report`.
//! - [`RunReport::to_jsonl`] — JSON lines, one typed record per line
//!   (`report` header, then `counter` / `gauge` / `histogram` / `event`
//!   lines), convenient for streaming consumers and `deltapath trace`.
//!
//! Both forms parse back losslessly via [`RunReport::from_json`] /
//! [`RunReport::from_jsonl`]; integers survive exactly because the JSON
//! layer keeps them as 128-bit integers rather than floats.

use std::fmt;

use crate::json::{Json, JsonError};
use crate::sink::Recorder;
use crate::trace::TraceEvent;

/// Schema identifier stamped into every report. Bump the trailing version
/// on any incompatible field change.
pub const RUN_REPORT_SCHEMA: &str = "deltapath.run_report.v1";

/// Schema identifier stamped into static-audit lint reports (`deltapath
/// lint --json`, `deltapath-analysis`). Lives here next to
/// [`RUN_REPORT_SCHEMA`] so every machine-readable export schema the
/// workspace emits is declared in one place. Bump the trailing version on
/// any incompatible field change.
pub const LINT_REPORT_SCHEMA: &str = "deltapath.lint.v1";

/// Schema identifier stamped into semantic plan-diff reports (`deltapath
/// diff --json`, `deltapath-analysis`). Bump the trailing version on any
/// incompatible field change.
pub const DIFF_REPORT_SCHEMA: &str = "deltapath.diff.v1";

/// A point-in-time snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs in bucket order; bucket
    /// semantics are those of [`crate::metrics::Log2Histogram`].
    pub buckets: Vec<(u8, u64)>,
}

/// A complete, serializable record of one instrumented run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Report name (e.g. the workload or benchmark that produced it).
    pub name: String,
    /// Free-form string metadata (`encoder`, `workload`, ...), sorted by
    /// key.
    pub meta: Vec<(String, String)>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` high-water-mark gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Buffered trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the bounded trace had to evict before export.
    pub dropped_events: u64,
}

/// A failure to interpret parsed JSON as a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub enum ReportError {
    /// The input was not valid JSON.
    Json(JsonError),
    /// The JSON was well-formed but not a valid report.
    Schema(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "invalid JSON: {e}"),
            ReportError::Schema(msg) => write!(f, "invalid report: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<JsonError> for ReportError {
    fn from(e: JsonError) -> Self {
        ReportError::Json(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, ReportError> {
    Err(ReportError::Schema(msg.into()))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, ReportError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ReportError::Schema(format!("missing or non-integer field {key:?}")))
}

fn field_str(v: &Json, key: &str) -> Result<String, ReportError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ReportError::Schema(format!("missing or non-string field {key:?}")))
}

fn name_value_pairs(v: &Json, key: &str) -> Result<Vec<(String, u64)>, ReportError> {
    let Some(obj) = v.get(key).and_then(Json::as_obj) else {
        return schema_err(format!("missing or non-object field {key:?}"));
    };
    obj.iter()
        .map(|(name, value)| {
            value
                .as_u64()
                .map(|n| (name.clone(), n))
                .ok_or_else(|| ReportError::Schema(format!("non-integer value in {key:?}")))
        })
        .collect()
}

fn buckets_from_json(v: &Json) -> Result<Vec<(u8, u64)>, ReportError> {
    let Some(items) = v.as_arr() else {
        return schema_err("histogram buckets must be an array");
    };
    items
        .iter()
        .map(|pair| match pair.as_arr() {
            Some([b, c]) => {
                let bucket = b
                    .as_u64()
                    .and_then(|b| u8::try_from(b).ok())
                    .ok_or_else(|| ReportError::Schema("bad bucket index".to_owned()))?;
                let count = c
                    .as_u64()
                    .ok_or_else(|| ReportError::Schema("bad bucket count".to_owned()))?;
                Ok((bucket, count))
            }
            _ => schema_err("histogram bucket must be a [bucket, count] pair"),
        })
        .collect()
}

impl HistogramSnapshot {
    /// An upper bound on the `q`-quantile (`0.0..=1.0`) of the recorded
    /// values: the inclusive limit of the log2 bucket containing the
    /// quantile, mirroring [`crate::metrics::Log2Histogram::quantile_limit`]
    /// so consumers of serialized reports compute the same p50/p90/p99 the
    /// live histogram would. Returns 0 when the snapshot is empty.
    pub fn quantile_limit(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bucket, count) in &self.buckets {
            seen = seen.saturating_add(count);
            if seen >= threshold {
                return crate::metrics::log2_bucket_limit(usize::from(bucket));
            }
        }
        self.buckets.last().map_or(0, |&(b, _)| {
            crate::metrics::log2_bucket_limit(usize::from(b))
        })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_owned(), Json::from_u64(self.count)),
            ("sum".to_owned(), Json::from_u64(self.sum)),
            (
                "buckets".to_owned(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(b, c)| {
                            Json::Arr(vec![Json::from_u64(u64::from(b)), Json::from_u64(c)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ReportError> {
        Ok(Self {
            count: field_u64(v, "count")?,
            sum: field_u64(v, "sum")?,
            buckets: buckets_from_json(
                v.get("buckets")
                    .ok_or_else(|| ReportError::Schema("missing buckets".to_owned()))?,
            )?,
        })
    }
}

fn event_to_json(e: &TraceEvent) -> Json {
    let mut fields = vec![
        ("seq".to_owned(), Json::from_u64(e.seq)),
        ("name".to_owned(), Json::Str(e.name.clone())),
    ];
    if let Some(ns) = e.duration_ns {
        fields.push(("duration_ns".to_owned(), Json::from_u64(ns)));
    }
    fields.push((
        "attrs".to_owned(),
        Json::Obj(
            e.attrs
                .iter()
                .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

fn event_from_json(v: &Json) -> Result<TraceEvent, ReportError> {
    let attrs = match v.get("attrs") {
        Some(attrs) => attrs
            .as_obj()
            .ok_or_else(|| ReportError::Schema("event attrs must be an object".to_owned()))?
            .iter()
            .map(|(k, value)| {
                value
                    .as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| ReportError::Schema("non-integer event attr".to_owned()))
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let duration_ns = match v.get("duration_ns") {
        Some(d) => Some(
            d.as_u64()
                .ok_or_else(|| ReportError::Schema("non-integer duration_ns".to_owned()))?,
        ),
        None => None,
    };
    Ok(TraceEvent {
        seq: field_u64(v, "seq")?,
        name: field_str(v, "name")?,
        duration_ns,
        attrs,
    })
}

impl RunReport {
    /// Exports the current contents of `recorder` under `name`.
    pub fn from_recorder(name: &str, recorder: &Recorder) -> Self {
        Self {
            name: name.to_owned(),
            meta: Vec::new(),
            counters: recorder.counter_values(),
            gauges: recorder.gauge_values(),
            histograms: recorder
                .histogram_snapshots()
                .into_iter()
                .map(|(n, (count, sum, buckets))| {
                    (
                        n,
                        HistogramSnapshot {
                            count,
                            sum,
                            buckets,
                        },
                    )
                })
                .collect(),
            events: recorder.events(),
            dropped_events: recorder.trace().dropped(),
        }
    }

    /// Adds a metadata entry, keeping entries sorted by key.
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.push((key.to_owned(), value.to_owned()));
        self.meta.sort();
        self
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The report as a single JSON value.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_owned(), Json::Str(RUN_REPORT_SCHEMA.to_owned())),
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "meta".to_owned(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "counters".to_owned(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from_u64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "events".to_owned(),
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ),
            (
                "dropped_events".to_owned(),
                Json::from_u64(self.dropped_events),
            ),
        ])
    }

    /// The report as a compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parses a report from a JSON document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// [`ReportError`] on malformed JSON, a wrong `schema` tag, or missing
    /// or mistyped fields.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Interprets an already-parsed JSON value as a report.
    pub fn from_json_value(v: &Json) -> Result<Self, ReportError> {
        let schema = field_str(v, "schema")?;
        if schema != RUN_REPORT_SCHEMA {
            return schema_err(format!(
                "unsupported schema {schema:?} (expected {RUN_REPORT_SCHEMA:?})"
            ));
        }
        let meta = match v.get("meta").and_then(Json::as_obj) {
            Some(fields) => fields
                .iter()
                .map(|(k, value)| {
                    value
                        .as_str()
                        .map(|s| (k.clone(), s.to_owned()))
                        .ok_or_else(|| ReportError::Schema("non-string meta value".to_owned()))
                })
                .collect::<Result<_, _>>()?,
            None => return schema_err("missing or non-object field \"meta\""),
        };
        let histograms = match v.get("histograms").and_then(Json::as_obj) {
            Some(fields) => fields
                .iter()
                .map(|(k, h)| HistogramSnapshot::from_json(h).map(|h| (k.clone(), h)))
                .collect::<Result<_, _>>()?,
            None => return schema_err("missing or non-object field \"histograms\""),
        };
        let events = match v.get("events").and_then(Json::as_arr) {
            Some(items) => items
                .iter()
                .map(event_from_json)
                .collect::<Result<_, _>>()?,
            None => return schema_err("missing or non-array field \"events\""),
        };
        Ok(Self {
            name: field_str(v, "name")?,
            meta,
            counters: name_value_pairs(v, "counters")?,
            gauges: name_value_pairs(v, "gauges")?,
            histograms,
            events,
            dropped_events: field_u64(v, "dropped_events")?,
        })
    }

    /// The report as JSON lines: a `report` header line carrying name,
    /// meta and the dropped-event count, then one typed line per metric
    /// and event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::Obj(vec![
            ("type".to_owned(), Json::Str("report".to_owned())),
            ("schema".to_owned(), Json::Str(RUN_REPORT_SCHEMA.to_owned())),
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "meta".to_owned(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "dropped_events".to_owned(),
                Json::from_u64(self.dropped_events),
            ),
        ]);
        header.write(&mut out);
        out.push('\n');
        let mut line = |fields: Vec<(String, Json)>| {
            Json::Obj(fields).write(&mut out);
            out.push('\n');
        };
        for (name, value) in &self.counters {
            line(vec![
                ("type".to_owned(), Json::Str("counter".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
                ("value".to_owned(), Json::from_u64(*value)),
            ]);
        }
        for (name, value) in &self.gauges {
            line(vec![
                ("type".to_owned(), Json::Str("gauge".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
                ("value".to_owned(), Json::from_u64(*value)),
            ]);
        }
        for (name, h) in &self.histograms {
            let mut fields = vec![
                ("type".to_owned(), Json::Str("histogram".to_owned())),
                ("name".to_owned(), Json::Str(name.clone())),
            ];
            if let Json::Obj(snapshot) = h.to_json() {
                fields.extend(snapshot);
            }
            line(fields);
        }
        for event in &self.events {
            let mut fields = vec![("type".to_owned(), Json::Str("event".to_owned()))];
            if let Json::Obj(body) = event_to_json(event) {
                fields.extend(body);
            }
            line(fields);
        }
        out
    }

    /// Parses a report from the JSON-lines form produced by
    /// [`Self::to_jsonl`]. Blank lines are skipped; the `report` header
    /// must come first.
    ///
    /// # Errors
    ///
    /// [`ReportError`] on malformed lines, an unknown line `type`, or a
    /// missing header.
    pub fn from_jsonl(text: &str) -> Result<Self, ReportError> {
        let mut report: Option<RunReport> = None;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line)?;
            let kind = field_str(&v, "type")?;
            match (kind.as_str(), &mut report) {
                ("report", slot @ None) => {
                    let schema = field_str(&v, "schema")?;
                    if schema != RUN_REPORT_SCHEMA {
                        return schema_err(format!("unsupported schema {schema:?}"));
                    }
                    let meta = match v.get("meta").and_then(Json::as_obj) {
                        Some(fields) => fields
                            .iter()
                            .map(|(k, value)| {
                                value
                                    .as_str()
                                    .map(|s| (k.clone(), s.to_owned()))
                                    .ok_or_else(|| {
                                        ReportError::Schema("non-string meta value".to_owned())
                                    })
                            })
                            .collect::<Result<_, _>>()?,
                        None => Vec::new(),
                    };
                    *slot = Some(RunReport {
                        name: field_str(&v, "name")?,
                        meta,
                        dropped_events: field_u64(&v, "dropped_events")?,
                        ..RunReport::default()
                    });
                }
                ("report", Some(_)) => return schema_err("duplicate report header line"),
                (_, None) => return schema_err("first line must have type \"report\""),
                ("counter", Some(r)) => r
                    .counters
                    .push((field_str(&v, "name")?, field_u64(&v, "value")?)),
                ("gauge", Some(r)) => r
                    .gauges
                    .push((field_str(&v, "name")?, field_u64(&v, "value")?)),
                ("histogram", Some(r)) => r
                    .histograms
                    .push((field_str(&v, "name")?, HistogramSnapshot::from_json(&v)?)),
                ("event", Some(r)) => r.events.push(event_from_json(&v)?),
                (other, Some(_)) => {
                    return schema_err(format!("unknown line type {other:?}"));
                }
            }
        }
        report.ok_or_else(|| ReportError::Schema("empty input".to_owned()))
    }
}

impl Recorder {
    /// Freezes the recorder's current contents into a [`RunReport`].
    pub fn report(&self, name: &str) -> RunReport {
        RunReport::from_recorder(name, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Telemetry;

    #[test]
    fn snapshot_quantiles_match_live_histogram() {
        let hist = crate::metrics::Log2Histogram::default();
        for v in [1u64, 2, 3, 5, 9, 17, 100, 1000, 65_000] {
            hist.record(v);
        }
        let (count, sum, buckets) = hist.snapshot();
        let snap = HistogramSnapshot {
            count,
            sum,
            buckets,
        };
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile_limit(q), hist.quantile_limit(q), "q={q}");
        }
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile_limit(0.5), 0);
    }

    fn sample() -> RunReport {
        let r = Recorder::with_trace_capacity(2);
        r.counter_add("ops.delta.adds", u64::MAX);
        r.counter_add("ops.delta.subs", 41);
        r.gauge_max("encoder.delta.stack_hwm", 9);
        r.observe("vm.depth", 0);
        r.observe("vm.depth", 7);
        r.observe("vm.depth", u64::MAX);
        r.event("one", &[("a", 1)]);
        r.span("two \"quoted\"\n", 123, &[]);
        r.event("three", &[]); // evicts "one"
        r.report("demo").with_meta("encoder", "delta")
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let report = sample();
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        // Exact u64 values survive (the f64 path would corrupt u64::MAX).
        assert_eq!(parsed.counter("ops.delta.adds"), Some(u64::MAX));
        assert_eq!(parsed.gauge("encoder.delta.stack_hwm"), Some(9));
        assert_eq!(parsed.dropped_events, 1);
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let report = sample();
        let text = report.to_jsonl();
        assert!(text.lines().count() >= 1 + 2 + 1 + 2 + 2);
        let first = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("type").and_then(Json::as_str), Some("report"));
        for line in text.lines() {
            Json::parse(line).expect("every line is standalone JSON");
        }
        assert_eq!(RunReport::from_jsonl(&text).unwrap(), report);
    }

    #[test]
    fn event_names_with_escapes_survive() {
        let report = sample();
        let parsed = RunReport::from_jsonl(&report.to_jsonl()).unwrap();
        assert!(parsed.events.iter().any(|e| e.name == "two \"quoted\"\n"));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let report = sample();
        let text = report.to_json().replace(RUN_REPORT_SCHEMA, "other.v9");
        assert!(matches!(
            RunReport::from_json(&text),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn jsonl_requires_header_first() {
        assert!(RunReport::from_jsonl("").is_err());
        assert!(
            RunReport::from_jsonl("{\"type\":\"counter\",\"name\":\"x\",\"value\":1}").is_err()
        );
        let double = format!("{0}{0}", sample().to_jsonl());
        assert!(RunReport::from_jsonl(&double).is_err());
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let report = Recorder::new().report("empty");
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert!(parsed.counters.is_empty());
        assert_eq!(RunReport::from_jsonl(&report.to_jsonl()).unwrap(), report);
    }
}
