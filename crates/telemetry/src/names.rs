//! Stable metric-name constants.
//!
//! Metric names are a stable interface (see DESIGN.md, "Observability"):
//! external tooling keys on them, so producers across the workspace share
//! these constants instead of re-typing strings. Only names consumed by
//! more than one crate (or pinned by the integration tests) live here;
//! single-site names such as the `ops.<technique>.<op>` family remain
//! format strings at their emission point.

/// Number of lock-striped shards a `ShardedCollector` was built with
/// (gauge).
pub const COLLECTOR_SHARD_SHARDS: &str = "collector.shard.shards";

/// Batched flushes performed by sharded-collector handles (counter).
pub const COLLECTOR_SHARD_FLUSHES: &str = "collector.shard.flushes";

/// Events delivered into shards by batched flushes (counter).
pub const COLLECTOR_SHARD_EVENTS: &str = "collector.shard.events";

/// Configured per-handle batch size (gauge).
pub const COLLECTOR_SHARD_BATCH: &str = "collector.shard.batch";

/// Events whose capture was served from a handle's local memo — no shard
/// delivery needed (counter).
pub const COLLECTOR_SHARD_MEMO_HITS: &str = "collector.shard.memo_hits";

/// Observations a bounded collector discarded because its log was full
/// (counter; see `EventLog::bounded` in `deltapath-runtime`).
pub const COLLECTOR_EVENTS_DROPPED: &str = "collector.events_dropped";

/// Anchor-piece decode-cache hits (counter; see `Decoder` in
/// `deltapath-core`).
pub const DECODER_PIECE_CACHE_HITS: &str = "decoder.piece_cache.hits";

/// Anchor-piece decode-cache misses (counter).
pub const DECODER_PIECE_CACHE_MISSES: &str = "decoder.piece_cache.misses";
