//! Stable metric-name constants.
//!
//! Metric names are a stable interface (see DESIGN.md, "Observability"):
//! external tooling keys on them, so producers across the workspace share
//! these constants instead of re-typing strings. Every fixed name emitted
//! by the workspace lives here; only the per-technique families
//! (`ops.<technique>.<op>`, `encoder.<technique>.<metric>`) remain format
//! strings at their emission point, because the technique segment is
//! computed at runtime. [`is_registered`] accepts both.

// ---- vm.* — interpreter run epilogue ----

/// Dynamic calls executed by a VM run (counter).
pub const VM_CALLS: &str = "vm.calls";

/// Abstract base cost units accrued by a VM run (counter).
pub const VM_BASE_COST: &str = "vm.base_cost";

/// Dynamic class-loading events during a VM run (counter).
pub const VM_DYNAMIC_LOADS: &str = "vm.dynamic_loads";

/// `observe` bytecodes executed (counter).
pub const VM_OBSERVES: &str = "vm.observes";

/// Method entries delivered to the collector (counter).
pub const VM_ENTRIES_COLLECTED: &str = "vm.entries_collected";

/// Deepest call stack reached (gauge).
pub const VM_MAX_CALL_DEPTH: &str = "vm.max_call_depth";

/// Per-run peak call depth distribution (histogram).
pub const VM_CALL_DEPTH_PEAK: &str = "vm.call_depth_peak";

/// Whole interpreter run (span; parent of encoder/collector reporting).
pub const VM_RUN: &str = "vm.run";

// ---- plan.* / algo2.* — static analysis phases (spans) ----

/// Whole `EncodingPlan::analyze` (span; parent of the planner phases).
pub const PLAN_ANALYZE: &str = "plan.analyze";

/// Call-graph construction phase (span).
pub const PLAN_GRAPH_BUILD: &str = "plan.graph_build";

/// Back-edge classification phase (span).
pub const PLAN_BACK_EDGES: &str = "plan.back_edges";

/// SID assignment for call-path tracking (span).
pub const PLAN_SIDS: &str = "plan.sids";

/// Per-site instruction packaging phase (span).
pub const PLAN_INSTRUCTIONS: &str = "plan.instructions";

/// Table-digest sealing for differential audits (span).
pub const PLAN_DIGESTS: &str = "plan.digests";

/// Whole Algorithm 2 run, overflow restarts included (span).
pub const ALGO2_ANALYZE: &str = "algo2.analyze";

/// Anchor territory identification, one per iteration (span).
pub const ALGO2_TERRITORIES: &str = "algo2.territories";

/// One parallel territory-walk worker chunk (span; emitted from worker
/// threads, merged cross-thread by name).
pub const ALGO2_TERRITORY_WALK: &str = "algo2.territory_walk";

/// Merge of per-worker territory results in anchor order (span).
pub const ALGO2_TERRITORY_MERGE: &str = "algo2.territory_merge";

/// Symbolic CAV/ICC interval propagation over the topological order, one
/// per iteration (span).
pub const ALGO2_INTERVAL_WALK: &str = "algo2.interval_walk";

/// Encoding-width overflow forced an anchor promotion and restart (event).
pub const ALGO2_RESTART: &str = "algo2.restart";

// ---- audit.* — static plan auditor passes (spans) ----

/// Whole `audit_plan` (span; parent of the passes below).
pub const AUDIT_PLAN: &str = "audit.plan";

/// Addition-value hygiene pass, DP030/DP032 (span).
pub const AUDIT_HYGIENE: &str = "audit.hygiene";

/// Back-edge classification pass, DP031 (span).
pub const AUDIT_BACK_EDGES: &str = "audit.back_edges";

/// Anchor structure pass, DP003 (span).
pub const AUDIT_ANCHORS: &str = "audit.anchors";

/// Territory recomputation pass, DP002/DP003 (span).
pub const AUDIT_TERRITORIES: &str = "audit.territories";

/// Symbolic CAV/ICC soundness pass, DP001/DP010 (span).
pub const AUDIT_INTERVALS: &str = "audit.intervals";

/// Instruction drift pass, DP001/DP003 (span).
pub const AUDIT_INSTRUCTIONS: &str = "audit.instructions";

/// Call-path tracking pass, DP020/DP021 (span).
pub const AUDIT_SIDS: &str = "audit.sids";

/// Compiled dispatch-table lowering cross-check, DP040 (span).
pub const AUDIT_COMPILED: &str = "audit.compiled";

/// Per-node stored-table consistency pass, DP001/DP002/DP003 (span).
pub const AUDIT_TABLES: &str = "audit.tables";

/// One parallel per-anchor audit worker chunk (span; emitted from worker
/// threads, merged cross-thread by name).
pub const AUDIT_ANCHOR_WALK: &str = "audit.anchor_walk";

/// Merge of per-worker audit diagnostics in anchor order (span).
pub const AUDIT_ANCHOR_MERGE: &str = "audit.anchor_merge";

/// Whole `audit_delta` incremental re-audit (span; parent of the re-run
/// passes, carrying certified/re-audited anchor counts).
pub const AUDIT_DELTA: &str = "audit.delta";

/// Change-set and dirty-region computation of `audit_delta` (span).
pub const AUDIT_CHANGE_SET: &str = "audit.change_set";

// ---- diff.* — semantic plan diff ----

/// Whole `diff_plans` structural comparison (span).
pub const DIFF_PLANS: &str = "diff.plans";

// ---- collector.* — event collection ----

/// Number of lock-striped shards a `ShardedCollector` was built with
/// (gauge).
pub const COLLECTOR_SHARD_SHARDS: &str = "collector.shard.shards";

/// Batched flushes performed by sharded-collector handles (counter).
pub const COLLECTOR_SHARD_FLUSHES: &str = "collector.shard.flushes";

/// Events delivered into shards by batched flushes (counter).
pub const COLLECTOR_SHARD_EVENTS: &str = "collector.shard.events";

/// Configured per-handle batch size (gauge).
pub const COLLECTOR_SHARD_BATCH: &str = "collector.shard.batch";

/// Events whose capture was served from a handle's local memo — no shard
/// delivery needed (counter).
pub const COLLECTOR_SHARD_MEMO_HITS: &str = "collector.shard.memo_hits";

/// Cross-shard merge of per-shard statistics (span).
pub const COLLECTOR_SHARD_MERGE: &str = "collector.shard.merge";

/// Observations a bounded collector discarded because its log was full
/// (counter; see `EventLog::bounded` in `deltapath-runtime`).
pub const COLLECTOR_EVENTS_DROPPED: &str = "collector.events_dropped";

/// Observations an `EventLog` retained (counter).
pub const COLLECTOR_EVENT_LOG_RECORDED: &str = "collector.event_log.recorded";

/// Observations an `EventLog` dropped at its bound (counter).
pub const COLLECTOR_EVENT_LOG_DROPPED: &str = "collector.event_log.dropped";

/// Distinct contexts a `RelativeCollector` logged (counter).
pub const COLLECTOR_RELATIVE_CONTEXTS: &str = "collector.relative.contexts";

/// Frames stored after relative-compression (counter).
pub const COLLECTOR_RELATIVE_FRAMES_STORED: &str = "collector.relative.frames_stored";

/// Frames the raw captures contained before compression (counter).
pub const COLLECTOR_RELATIVE_FRAMES_RAW: &str = "collector.relative.frames_raw";

/// Captures a `RelativeCollector` skipped as non-walk (counter).
pub const COLLECTOR_RELATIVE_SKIPPED: &str = "collector.relative.skipped";

/// Entries absorbed by a `ContextStats` (counter).
pub const COLLECTOR_STATS_CONTEXTS: &str = "collector.stats.contexts";

/// Distinct captures held by a `ContextStats` (counter).
pub const COLLECTOR_STATS_UNIQUE: &str = "collector.stats.unique";

/// Deepest true context depth observed (gauge).
pub const COLLECTOR_STATS_MAX_DEPTH: &str = "collector.stats.max_depth";

/// Deepest encoder shallow-stack depth observed (gauge).
pub const COLLECTOR_STATS_MAX_STACK_DEPTH: &str = "collector.stats.max_stack_depth";

/// Largest UCP marker count observed (gauge).
pub const COLLECTOR_STATS_MAX_UCP: &str = "collector.stats.max_ucp";

/// Largest encoded context ID observed (gauge).
pub const COLLECTOR_STATS_MAX_ID: &str = "collector.stats.max_id";

// ---- decoder.* — context decoding ----

/// Anchor-piece decode-cache hits (counter; see `Decoder` in
/// `deltapath-core`).
pub const DECODER_PIECE_CACHE_HITS: &str = "decoder.piece_cache.hits";

/// Anchor-piece decode-cache misses (counter).
pub const DECODER_PIECE_CACHE_MISSES: &str = "decoder.piece_cache.misses";

// ---- span.* — span profiler self-reporting ----

/// Per-thread lanes a `SpanProfiler` registered (gauge).
pub const SPAN_LANES: &str = "span.lanes";

/// Completed span events dropped at the lane buffer cap (gauge).
pub const SPAN_DROPPED: &str = "span.dropped";

/// Unbalanced span open/close pairs observed (gauge; nonzero means an
/// instrumentation bug).
pub const SPAN_UNBALANCED: &str = "span.unbalanced";

// ---- profile.* — sampled hot-path latency ----

/// Sampled compiled-encoder hook latency, nanoseconds (histogram; 1-in-N
/// sampled so the hot loop stays one array index).
pub const PROFILE_HOOK_NS: &str = "profile.hook_ns";

/// Hook latency samples taken (counter).
pub const PROFILE_HOOK_SAMPLES: &str = "profile.hook_samples";

/// Configured sampling period N of the hook sampler (gauge).
pub const PROFILE_HOOK_PERIOD: &str = "profile.hook_period";

// ---- encoder.batched.* / encoder.backedge.* — batch engine ----
//
// The per-technique metrics (`encoder.batched.stack_hwm`, …) follow the
// `encoder.<technique>.<metric>` format family like every other encoder;
// the names below are the batch engine's *fixed* machinery metrics,
// independent of the CPT mode the encoder runs under.

/// Buffer flushes the batched encoder pushed through the batch kernel
/// (counter).
pub const ENCODER_BATCHED_FLUSHES: &str = "encoder.batched.flushes";

/// Hook words the batched encoder consumed (counter).
pub const ENCODER_BATCHED_HOOKS: &str = "encoder.batched.hooks";

/// Distribution of flushed batch lengths (histogram).
pub const ENCODER_BATCHED_BATCH_LEN: &str = "encoder.batched.batch_len";

/// Configured batch capacity in hook words (gauge).
pub const ENCODER_BATCHED_CAPACITY: &str = "encoder.batched.capacity";

/// Recursion back-edge pairs in the compiled two-level lookup table
/// (gauge).
pub const ENCODER_BACKEDGE_PAIRS: &str = "encoder.backedge.pairs";

/// Sites with a non-empty bucket in the back-edge lookup table (gauge).
pub const ENCODER_BACKEDGE_SITES: &str = "encoder.backedge.sites";

/// Back-edge lookup-table probes taken on the hot path (counter).
pub const ENCODER_BACKEDGE_PROBES: &str = "encoder.backedge.probes";

/// Every fixed metric name the workspace emits. Format-string families
/// (`ops.*`, `encoder.*`) are validated by prefix instead — see
/// [`is_registered`].
pub const ALL: &[&str] = &[
    VM_CALLS,
    VM_BASE_COST,
    VM_DYNAMIC_LOADS,
    VM_OBSERVES,
    VM_ENTRIES_COLLECTED,
    VM_MAX_CALL_DEPTH,
    VM_CALL_DEPTH_PEAK,
    VM_RUN,
    PLAN_ANALYZE,
    PLAN_GRAPH_BUILD,
    PLAN_BACK_EDGES,
    PLAN_SIDS,
    PLAN_INSTRUCTIONS,
    PLAN_DIGESTS,
    ALGO2_ANALYZE,
    ALGO2_TERRITORIES,
    ALGO2_TERRITORY_WALK,
    ALGO2_TERRITORY_MERGE,
    ALGO2_INTERVAL_WALK,
    ALGO2_RESTART,
    AUDIT_PLAN,
    AUDIT_HYGIENE,
    AUDIT_BACK_EDGES,
    AUDIT_ANCHORS,
    AUDIT_TERRITORIES,
    AUDIT_INTERVALS,
    AUDIT_INSTRUCTIONS,
    AUDIT_SIDS,
    AUDIT_COMPILED,
    AUDIT_TABLES,
    AUDIT_ANCHOR_WALK,
    AUDIT_ANCHOR_MERGE,
    AUDIT_DELTA,
    AUDIT_CHANGE_SET,
    DIFF_PLANS,
    COLLECTOR_SHARD_SHARDS,
    COLLECTOR_SHARD_FLUSHES,
    COLLECTOR_SHARD_EVENTS,
    COLLECTOR_SHARD_BATCH,
    COLLECTOR_SHARD_MEMO_HITS,
    COLLECTOR_SHARD_MERGE,
    COLLECTOR_EVENTS_DROPPED,
    COLLECTOR_EVENT_LOG_RECORDED,
    COLLECTOR_EVENT_LOG_DROPPED,
    COLLECTOR_RELATIVE_CONTEXTS,
    COLLECTOR_RELATIVE_FRAMES_STORED,
    COLLECTOR_RELATIVE_FRAMES_RAW,
    COLLECTOR_RELATIVE_SKIPPED,
    COLLECTOR_STATS_CONTEXTS,
    COLLECTOR_STATS_UNIQUE,
    COLLECTOR_STATS_MAX_DEPTH,
    COLLECTOR_STATS_MAX_STACK_DEPTH,
    COLLECTOR_STATS_MAX_UCP,
    COLLECTOR_STATS_MAX_ID,
    DECODER_PIECE_CACHE_HITS,
    DECODER_PIECE_CACHE_MISSES,
    SPAN_LANES,
    SPAN_DROPPED,
    SPAN_UNBALANCED,
    PROFILE_HOOK_NS,
    PROFILE_HOOK_SAMPLES,
    PROFILE_HOOK_PERIOD,
    ENCODER_BATCHED_FLUSHES,
    ENCODER_BATCHED_HOOKS,
    ENCODER_BATCHED_BATCH_LEN,
    ENCODER_BATCHED_CAPACITY,
    ENCODER_BACKEDGE_PAIRS,
    ENCODER_BACKEDGE_SITES,
    ENCODER_BACKEDGE_PROBES,
];

/// Whether `name` is a registered workspace metric name: either one of
/// the [`ALL`] constants, or a member of the per-technique format
/// families `ops.<technique>.<op>` / `encoder.<technique>.<metric>`.
pub fn is_registered(name: &str) -> bool {
    ALL.contains(&name)
        || name
            .strip_prefix("ops.")
            .or_else(|| name.strip_prefix("encoder."))
            .is_some_and(|rest| rest.contains('.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for &name in ALL {
            assert!(seen.insert(name), "duplicate registered name {name}");
            assert!(
                name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "malformed name {name}"
            );
        }
    }

    #[test]
    fn format_families_are_recognized() {
        assert!(is_registered("ops.delta.adds"));
        assert!(is_registered("encoder.compiled-nocpt.stack_hwm"));
        assert!(is_registered(VM_RUN));
        assert!(!is_registered("ops.dangling"));
        assert!(!is_registered("vm.unheard_of"));
        assert!(!is_registered("encoder.flat"));
    }

    #[test]
    fn batch_engine_names_are_fixed_constants() {
        // The batch engine's machinery metrics must be registered as fixed
        // constants (not left to the `encoder.*` format family alone), so
        // external tooling can key on them.
        for name in [
            ENCODER_BATCHED_FLUSHES,
            ENCODER_BATCHED_HOOKS,
            ENCODER_BATCHED_BATCH_LEN,
            ENCODER_BATCHED_CAPACITY,
            ENCODER_BACKEDGE_PAIRS,
            ENCODER_BACKEDGE_SITES,
            ENCODER_BACKEDGE_PROBES,
        ] {
            assert!(ALL.contains(&name), "{name} missing from the registry");
            assert!(is_registered(name));
        }
    }
}
