//! # DeltaPath — precise and scalable calling context encoding
//!
//! A Rust reproduction of *"DeltaPath: Precise and Scalable Calling Context
//! Encoding"* (Zeng, Rhee, Zhang, Arora, Jiang, Liu — CGO 2014).
//!
//! A *calling context* — the stack of active invocations leading to a
//! program point — is invaluable for logging, profiling, debugging and
//! anomaly detection, but walking the stack at every event is far too slow.
//! DeltaPath instead maintains a small integer ID with one addition per call
//! and one subtraction per return, such that the ID (together with a shallow
//! stack) *uniquely* identifies the context and can be *decoded* back to the
//! exact method sequence. Unlike its predecessors it supports:
//!
//! * **virtual dispatch** — a single addition value per call site no matter
//!   how many targets it has (Algorithm 1);
//! * **large programs** — automatic *anchor* placement divides contexts into
//!   integer-sized pieces when the context count overflows the encoding
//!   integer (Algorithm 2);
//! * **dynamic class loading and selective scopes** — call-path tracking
//!   detects *unexpected call paths* from code the static analysis never
//!   saw, keeping encodings correct and decodable.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ir`] | the object-oriented program representation and builder |
//! | [`callgraph`] | CHA/RTA/exact call-graph construction, SCCs, reachability |
//! | [`core`] | the encoding algorithms, plans, runtime state machine, decoder |
//! | [`analysis`] | the static plan auditor: symbolic soundness checks, `DP0xx` lints |
//! | [`runtime`] | the instrumented interpreter, encoder hooks, cost metering |
//! | [`telemetry`] | std-only counters, histograms, event traces, JSON run reports |
//! | [`baselines`] | PCC, Breadcrumbs-lite, calling-context tree |
//! | [`workloads`] | synthetic program generator, SPECjvm-like suite, paper figures |
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use deltapath::{
//!     Capture, CollectMode, DeltaEncoder, EncodingPlan, EventLog, MethodKind, PlanConfig,
//!     ProgramBuilder, Vm, VmConfig,
//! };
//!
//! // 1. Build (or generate, or load) a program.
//! let mut b = ProgramBuilder::new("quickstart");
//! let cls = b.add_class("Main", None);
//! b.method(cls, "work", MethodKind::Static)
//!     .body(|f| {
//!         f.observe(0); // an event whose calling context we want
//!     })
//!     .finish();
//! let main = b
//!     .method(cls, "main", MethodKind::Static)
//!     .body(|f| {
//!         f.call(cls, "work");
//!     })
//!     .finish();
//! b.entry(main);
//! let program = b.finish()?;
//!
//! // 2. Statically analyse it: addition values, anchors, SIDs.
//! let plan = EncodingPlan::analyze(&program, &PlanConfig::default())?;
//!
//! // 3. Run it with DeltaPath instrumentation.
//! let mut vm = Vm::new(&program, VmConfig::default().with_collect(CollectMode::ObservesOnly));
//! let mut encoder = DeltaEncoder::new(&plan);
//! let mut log = EventLog::default();
//! vm.run(&mut encoder, &mut log)?;
//!
//! // 4. Decode the logged encodings back to exact contexts.
//! let Capture::Delta(ctx) = &log.events[0].2 else { unreachable!() };
//! let context = plan.decoder().decode(ctx)?;
//! assert_eq!(context, vec![main, program.class_by_name("Main")
//!     .and_then(|c| program.declared_method(c, program.symbols().lookup("work").unwrap()))
//!     .unwrap()]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use deltapath_analysis as analysis;
pub use deltapath_baselines as baselines;
pub use deltapath_callgraph as callgraph;
pub use deltapath_core as core;
pub use deltapath_ir as ir;
pub use deltapath_runtime as runtime;
pub use deltapath_telemetry as telemetry;
pub use deltapath_workloads as workloads;

pub use deltapath_analysis::{
    audit_compiled, audit_delta, audit_plan, audit_plan_full, audit_plan_with, diff_plans,
    AuditBaseline, AuditOptions, AuditOutcome, AuditReport, DeltaOutcome, Diagnostic, LintCode,
    PlanDiff, Severity,
};
pub use deltapath_baselines::{
    BreadcrumbsDecoder, BreadcrumbsEncoder, CctEncoder, PccEncoder, PccWidth,
};
pub use deltapath_callgraph::{
    parse_graph, render_graph, render_graph_string, Analysis, CallGraph, GraphChangeSet,
    GraphConfig, GraphDiag, GraphDiagCode, GraphStats, ImportError, ImportedGraph, ScopeFilter,
    GRAPH_SCHEMA,
};
pub use deltapath_core::{
    parse_plan, render_plan, render_plan_string, BatchCounts, BatchState, CompiledPlan,
    DecodeError, DecodeOptions, Decoder, DeltaState, EncodeError, EncodedContext, EncodingPlan,
    EncodingWidth, Frame, FrameTag, HookWord, ImportedPlan, PlanConfig, PlanParseError, Sid,
    PLAN_SCHEMA,
};
pub use deltapath_ir::{
    skeleton_program, ArgExpr, ClassId, MethodId, MethodKind, Program, ProgramBuilder, Receiver,
    SiteId, SkeletonSite,
};
pub use deltapath_runtime::{
    BatchedDeltaEncoder, Capture, CollectMode, Collector, CompiledDeltaEncoder, ContextEncoder,
    ContextProfile, ContextStats, CostModel, DeltaEncoder, EventLog, HookSampler, NullCollector,
    NullEncoder, OpCounts, RunStats, ShardHandle, ShardedCollector, StackWalkEncoder, Vm, VmConfig,
};
pub use deltapath_telemetry::{
    FoldedStacks, HistogramSnapshot, NullTelemetry, Recorder, RunReport, ScopedSpan, SpanProfiler,
    SpanSnapshot, Telemetry,
};
