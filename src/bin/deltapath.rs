//! The `deltapath` command-line tool: explore the bundled workloads, their
//! call graphs and encoding plans, and run them under any of the encoders.
//!
//! ```text
//! deltapath list
//! deltapath inspect <benchmark> [--scope app|all] [--width BITS]
//! deltapath dot <benchmark> [--scope app|all]
//! deltapath run <benchmark> [--encoder native|pcc|deltapath|deltapath-nocpt|compiled|compiled-nocpt|stackwalk|cct]
//! deltapath decode <benchmark>     # run, capture, decode a few contexts
//! deltapath report <benchmark> [--encoder NAME]   # machine-readable run report (JSON)
//! deltapath report --from FILE                    # re-emit a saved report (round-trip)
//! deltapath trace <benchmark> [--encoder NAME]    # the same report as JSON lines
//! deltapath lint <benchmark>|--all [--json] [--deny-warnings] [--scope app|all] [--width BITS]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use deltapath::baselines::{CctEncoder, PccEncoder, PccWidth};
use deltapath::workloads::specjvm::{program, suite};
use deltapath::{
    Analysis, CallGraph, Capture, CollectMode, CompiledDeltaEncoder, ContextEncoder, ContextStats,
    DeltaEncoder, EncodingPlan, EncodingWidth, EventLog, GraphConfig, GraphStats, NullCollector,
    NullEncoder, PlanConfig, Program, Recorder, RunReport, ScopeFilter, StackWalkEncoder, Vm,
    VmConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        _ => {
            eprintln!(
                "usage: deltapath <list|inspect|dot|run|decode|report|trace|lint> [benchmark] [options]\n\
                 \n\
                 list                      list the bundled SPECjvm2008-like benchmarks\n\
                 inspect <bench>           static characteristics and encoding plan summary\n\
                 \x20   --scope app|all    selective vs full encoding (default: app)\n\
                 \x20   --width BITS       encoding integer width (default: 64)\n\
                 dot <bench>               print the encoded call graph in Graphviz format\n\
                 run <bench>               execute under an encoder and report costs\n\
                 \x20   --encoder NAME     native|pcc|deltapath|deltapath-nocpt|\n\
                 \x20                      compiled|compiled-nocpt|stackwalk|cct\n\
                 decode <bench>            run, capture, and decode example contexts\n\
                 report <bench>            run with telemetry; print the run report as JSON\n\
                 \x20   --encoder NAME     as for `run` (default: deltapath)\n\
                 \x20   --from FILE        re-emit a saved report (JSON or JSONL) instead\n\
                 trace <bench>             like `report`, but printed as JSON lines\n\
                 lint <bench>|--all        statically audit the encoding plan (DP0xx diagnostics)\n\
                 \x20   --json             machine-readable report (schema deltapath.lint.v1)\n\
                 \x20   --deny-warnings    exit with failure on warnings, not just errors\n\
                 \x20   --scope app|all    selective vs full encoding (default: app)\n\
                 \x20   --width BITS       encoding integer width (default: 64)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &[String]) -> Result<Program, String> {
    let name = args.first().ok_or("missing benchmark name")?;
    program(name).ok_or_else(|| {
        format!("unknown benchmark {name:?}; run `deltapath list` to see the available ones")
    })
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn scope_of(args: &[String]) -> Result<ScopeFilter, String> {
    match flag(args, "--scope").as_deref() {
        None | Some("app") => Ok(ScopeFilter::ApplicationOnly),
        Some("all") => Ok(ScopeFilter::All),
        Some(other) => Err(format!("unknown scope {other:?} (use app|all)")),
    }
}

fn width_of(args: &[String]) -> Result<EncodingWidth, String> {
    match flag(args, "--width") {
        None => Ok(EncodingWidth::U64),
        Some(w) => match w.parse::<u8>() {
            Ok(bits @ 1..=127) => Ok(EncodingWidth::new(bits)),
            _ => Err(format!("bad --width value {w:?} (use 1..=127)")),
        },
    }
}

fn cmd_list() -> Result<(), String> {
    println!("bundled benchmarks (seeded synthetic stand-ins for SPECjvm2008):");
    for bench in suite() {
        let p = bench.program();
        println!(
            "  {:<22} {:>5} classes {:>6} methods {:>6} call sites",
            bench.name,
            p.classes().len(),
            p.methods().len(),
            p.sites().len()
        );
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let scope = scope_of(args)?;
    let config = PlanConfig::default()
        .with_scope(scope)
        .with_width(width_of(args)?);
    let graph = CallGraph::build(
        &p,
        &GraphConfig {
            analysis: Analysis::Cha,
            scope,
            include_dynamic: false,
        },
    );
    let stats = GraphStats::compute(&p, &graph);
    println!("{}:", p.name());
    println!(
        "  call graph: {} nodes, {} edges, {} call sites ({} virtual), {} roots",
        stats.nodes,
        stats.edges,
        stats.call_sites,
        stats.virtual_call_sites,
        graph.roots().len()
    );
    let plan = EncodingPlan::analyze(&p, &config).map_err(|e| e.to_string())?;
    let enc = plan.encoding();
    println!(
        "  plan ({} encoding): {} instrumented methods, {} sites with ID arithmetic",
        config.width,
        plan.instrumented_method_count(),
        plan.instrumented_site_count()
    );
    println!(
        "  anchors: {} total ({} from overflow, {} analysis restarts)",
        enc.anchors.len(),
        enc.overflow_anchor_count(),
        enc.restarts
    );
    println!(
        "  encoding space: max ICC {} (max ID {})",
        enc.max_icc,
        enc.required_max_id()
    );
    println!("  SID sets: {}", plan.sids().set_count());
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let scope = scope_of(args)?;
    let graph = CallGraph::build(
        &p,
        &GraphConfig {
            analysis: Analysis::Cha,
            scope,
            include_dynamic: false,
        },
    );
    print!("{}", graph.to_dot(&p));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let encoder_name = flag(args, "--encoder").unwrap_or_else(|| "deltapath".to_owned());
    let plan_config = PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly);
    let plan = EncodingPlan::analyze(&p, &plan_config).map_err(|e| e.to_string())?;
    let nocpt = EncodingPlan::analyze(&p, &plan_config.clone().with_cpt(false))
        .map_err(|e| e.to_string())?;
    let vm_config = VmConfig::default().with_collect(CollectMode::Entries);

    let started = std::time::Instant::now();
    let (run, counts, unique) = match encoder_name.as_str() {
        "native" => {
            let mut vm = Vm::new(&p, vm_config);
            let run = vm
                .run(&mut NullEncoder, &mut NullCollector)
                .map_err(|e| e.to_string())?;
            (run, Default::default(), 0)
        }
        "pcc" => run_one(
            &p,
            vm_config,
            PccEncoder::from_plan(&plan, PccWidth::Bits32),
        )?,
        "deltapath" => run_one(&p, vm_config, DeltaEncoder::new(&plan))?,
        "deltapath-nocpt" => run_one(&p, vm_config, DeltaEncoder::new(&nocpt))?,
        "compiled" => {
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?
        }
        "compiled-nocpt" => {
            let compiled = nocpt.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?
        }
        "stackwalk" => run_one(&p, vm_config, StackWalkEncoder::full())?,
        "cct" => run_one(&p, vm_config, CctEncoder::new())?,
        other => return Err(format!("unknown encoder {other:?}")),
    };
    let elapsed = started.elapsed();
    println!(
        "{} under {encoder_name}: {} calls, base cost {}, wall time {:.2?}",
        p.name(),
        run.calls,
        run.base_cost,
        elapsed
    );
    println!(
        "  encoder ops: adds {}, subs {}, hashes {}, sid checks {}, pushes {}, pops {}, walked {}",
        counts.adds,
        counts.subs,
        counts.hashes,
        counts.sid_checks,
        counts.pushes,
        counts.pops,
        counts.walked_frames
    );
    if unique > 0 {
        println!("  unique contexts captured: {unique}");
    }
    Ok(())
}

fn run_one<E: ContextEncoder>(
    p: &Program,
    vm_config: VmConfig,
    mut encoder: E,
) -> Result<(deltapath::RunStats, deltapath::OpCounts, usize), String> {
    let mut vm = Vm::new(p, vm_config);
    let mut stats = ContextStats::new();
    let run = vm
        .run(&mut encoder, &mut stats)
        .map_err(|e| e.to_string())?;
    Ok((run, encoder.counts(), stats.unique_contexts()))
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let plan = EncodingPlan::analyze(
        &p,
        &PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly),
    )
    .map_err(|e| e.to_string())?;
    let mut vm = Vm::new(
        &p,
        VmConfig::default().with_collect(CollectMode::ObservesOnly),
    );
    let mut encoder = DeltaEncoder::new(&plan);
    let mut log = EventLog::default();
    vm.run(&mut encoder, &mut log).map_err(|e| e.to_string())?;

    let decoder = plan.decoder();
    let mut by_context: HashMap<Vec<String>, usize> = HashMap::new();
    let mut outside = 0usize;
    let mut errors = 0usize;
    for (_, at, capture) in &log.events {
        if plan.entry(*at).is_none() {
            // The event fired inside unencoded (library) code: under
            // selective encoding there is no context to decode there.
            outside += 1;
            continue;
        }
        let Capture::Delta(ctx) = capture else {
            continue;
        };
        match decoder.decode(ctx) {
            Ok(context) => {
                let pretty: Vec<String> = context.iter().map(|&m| p.method_name(m)).collect();
                *by_context.entry(pretty).or_default() += 1;
            }
            Err(_) => errors += 1,
        }
    }
    println!(
        "{}: {} events ({} in unencoded library code, skipped), {} distinct contexts, {} decode failures",
        p.name(),
        log.events.len(),
        outside,
        by_context.len(),
        errors
    );
    let mut ranked: Vec<_> = by_context.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (context, count) in ranked.iter().take(10) {
        println!("{count:>8}x  {}", context.join(" -> "));
    }
    Ok(())
}

/// Runs `bench` under `--encoder` with a [`Recorder`] attached to both the
/// plan analysis and the VM, and freezes the result into a [`RunReport`].
fn telemetry_report(args: &[String]) -> Result<RunReport, String> {
    let p = load(args)?;
    let encoder_name = flag(args, "--encoder").unwrap_or_else(|| "deltapath".to_owned());
    let recorder = Arc::new(Recorder::new());
    let plan_config = PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly);
    let vm_config = VmConfig::default()
        .with_collect(CollectMode::Entries)
        .with_telemetry(recorder.clone());
    match encoder_name.as_str() {
        "native" => {
            run_one(&p, vm_config, NullEncoder)?;
        }
        "pcc" => {
            let plan = EncodingPlan::analyze_with(&p, &plan_config, recorder.as_ref())
                .map_err(|e| e.to_string())?;
            run_one(
                &p,
                vm_config,
                PccEncoder::from_plan(&plan, PccWidth::Bits32),
            )?;
        }
        "deltapath" => {
            let plan = EncodingPlan::analyze_with(&p, &plan_config, recorder.as_ref())
                .map_err(|e| e.to_string())?;
            run_one(&p, vm_config, DeltaEncoder::new(&plan))?;
        }
        "deltapath-nocpt" => {
            let plan =
                EncodingPlan::analyze_with(&p, &plan_config.with_cpt(false), recorder.as_ref())
                    .map_err(|e| e.to_string())?;
            run_one(&p, vm_config, DeltaEncoder::new(&plan))?;
        }
        "compiled" => {
            let plan = EncodingPlan::analyze_with(&p, &plan_config, recorder.as_ref())
                .map_err(|e| e.to_string())?;
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?;
        }
        "compiled-nocpt" => {
            let plan =
                EncodingPlan::analyze_with(&p, &plan_config.with_cpt(false), recorder.as_ref())
                    .map_err(|e| e.to_string())?;
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?;
        }
        "stackwalk" => {
            run_one(&p, vm_config, StackWalkEncoder::full())?;
        }
        "cct" => {
            run_one(&p, vm_config, CctEncoder::new())?;
        }
        other => return Err(format!("unknown encoder {other:?}")),
    }
    Ok(recorder
        .report(p.name())
        .with_meta("benchmark", p.name())
        .with_meta("encoder", &encoder_name)
        .with_meta("scope", "app"))
}

/// Parses a saved report in either serialization: a single JSON document
/// (`report` output) or JSON lines (`trace` output).
fn parse_report(text: &str) -> Result<RunReport, String> {
    RunReport::from_json(text)
        .or_else(|_| RunReport::from_jsonl(text))
        .map_err(|e| format!("not a run report in JSON or JSONL form: {e}"))
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    if let Some(path) = flag(args, "--from") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        println!("{}", parse_report(&text)?.to_json());
        return Ok(());
    }
    println!("{}", telemetry_report(args)?.to_json());
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    print!("{}", telemetry_report(args)?.to_jsonl());
    Ok(())
}

/// Statically audits one benchmark's (or every benchmark's) encoding plan
/// with [`deltapath::audit_plan`] and reports the `DP0xx` diagnostics.
/// Exits with failure on any error-severity finding, or on any finding at
/// all under `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let scope = scope_of(args)?;
    let config = PlanConfig::default()
        .with_scope(scope)
        .with_width(width_of(args)?);

    let programs: Vec<Program> = if args.iter().any(|a| a == "--all") {
        suite().iter().map(|b| b.program()).collect()
    } else {
        vec![load(args)?]
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for p in &programs {
        let plan = EncodingPlan::analyze(p, &config)
            .map_err(|e| format!("{}: plan analysis failed: {e}", p.name()))?;
        let report = deltapath::audit_plan(p, &plan);
        errors += report.errors();
        warnings += report.warnings();
        if json {
            println!("{}", report.to_json(p.name()));
        } else {
            for d in &report.diagnostics {
                println!("{}: {d}", p.name());
            }
            println!(
                "{}: {} nodes, {} edges, {} anchors — {} errors, {} warnings",
                p.name(),
                report.nodes,
                report.edges,
                report.anchors,
                report.errors(),
                report.warnings()
            );
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        Err(format!(
            "lint failed: {errors} errors, {warnings} warnings across {} plans",
            programs.len()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["compress", "--scope", "all", "--width", "32"]);
        assert_eq!(flag(&a, "--scope").as_deref(), Some("all"));
        assert_eq!(flag(&a, "--width").as_deref(), Some("32"));
        assert_eq!(flag(&a, "--missing"), None);
        // Flag at the end without a value.
        let b = args(&["x", "--scope"]);
        assert_eq!(flag(&b, "--scope"), None);
    }

    #[test]
    fn scope_parsing() {
        assert_eq!(
            scope_of(&args(&["x"])).unwrap(),
            ScopeFilter::ApplicationOnly
        );
        assert_eq!(
            scope_of(&args(&["x", "--scope", "app"])).unwrap(),
            ScopeFilter::ApplicationOnly
        );
        assert_eq!(
            scope_of(&args(&["x", "--scope", "all"])).unwrap(),
            ScopeFilter::All
        );
        assert!(scope_of(&args(&["x", "--scope", "bogus"])).is_err());
    }

    #[test]
    fn width_parsing() {
        assert_eq!(width_of(&args(&["x"])).unwrap(), EncodingWidth::U64);
        assert_eq!(
            width_of(&args(&["x", "--width", "32"])).unwrap(),
            EncodingWidth::U32
        );
        // Out-of-range or garbage widths are errors, not panics.
        assert!(width_of(&args(&["x", "--width", "0"])).is_err());
        assert!(width_of(&args(&["x", "--width", "200"])).is_err());
        assert!(width_of(&args(&["x", "--width", "wide"])).is_err());
    }

    #[test]
    fn load_rejects_unknown_benchmarks() {
        assert!(load(&args(&["not-a-benchmark"])).is_err());
        assert!(load(&[]).is_err());
    }
}
