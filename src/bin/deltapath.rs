//! The `deltapath` command-line tool: explore the bundled workloads, their
//! call graphs and encoding plans, and run them under any of the encoders.
//!
//! ```text
//! deltapath list
//! deltapath inspect <benchmark> [--scope app|all] [--width BITS]
//! deltapath dot <benchmark> [--scope app|all]
//! deltapath run <benchmark> [--encoder native|pcc|deltapath|deltapath-nocpt|compiled|compiled-nocpt|batched|batched-nocpt|stackwalk|cct]
//! deltapath decode <benchmark>     # run, capture, decode a few contexts
//! deltapath report <benchmark> [--encoder NAME] [--json]   # run report (summary or JSON)
//! deltapath report --from FILE [--json]                    # re-read a saved report
//! deltapath trace <benchmark> [--encoder NAME] [--chrome FILE]  # JSON lines / Chrome trace
//! deltapath flamegraph <benchmark> [--contexts|--spans] [--out FILE]
//! deltapath flamegraph --all --check               # validate against the stack-walk oracle
//! deltapath lint <benchmark>|--all [--json] [--deny-warnings] [--scope app|all] [--width BITS]
//!     [--workers N] [--baseline FILE] [--plan-out FILE]
//! deltapath import <file> [--lint] [--dot] [--render] [--width BITS] [--budget N]
//!     [--workers N] [--baseline FILE] [--plan-out FILE]                # deltapath.graph.v1
//! deltapath diff <old.plan> <new.plan> [--json]    # semantic plan diff (deltapath.diff.v1)
//! deltapath generate [--methods N] [--seed S] [--out FILE]             # scale graph to file
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use deltapath::baselines::{CctEncoder, PccEncoder, PccWidth};
use deltapath::callgraph::skeleton_for_graph;
use deltapath::telemetry::Json;
use deltapath::workloads::scale::ScaleConfig;
use deltapath::workloads::specjvm::{program, suite};
use deltapath::{
    audit_delta, audit_plan_full, audit_plan_with, diff_plans, parse_graph, parse_plan,
    render_graph, render_plan, Analysis, AuditBaseline, AuditOptions, AuditReport,
    BatchedDeltaEncoder, CallGraph, Capture, CollectMode, CompiledDeltaEncoder, ContextEncoder,
    ContextProfile, ContextStats, DeltaEncoder, EncodingPlan, EncodingWidth, EventLog,
    FoldedStacks, GraphConfig, GraphStats, ImportError, ImportedPlan, NullCollector, NullEncoder,
    NullTelemetry, PlanConfig, PlanParseError, Program, RunReport, ScopeFilter, SpanProfiler,
    StackWalkEncoder, Telemetry, Vm, VmConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("flamegraph") => cmd_flamegraph(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("import") => cmd_import(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        _ => {
            eprintln!(
                "usage: deltapath <list|inspect|dot|run|decode|report|trace|flamegraph|lint> [benchmark] [options]\n\
                 \n\
                 list                      list the bundled SPECjvm2008-like benchmarks\n\
                 inspect <bench>           static characteristics and encoding plan summary\n\
                 \x20   --scope app|all    selective vs full encoding (default: app)\n\
                 \x20   --width BITS       encoding integer width (default: 64)\n\
                 dot <bench>               print the encoded call graph in Graphviz format\n\
                 run <bench>               execute under an encoder and report costs\n\
                 \x20   --encoder NAME     native|pcc|deltapath|deltapath-nocpt|\n\
                 \x20                      compiled|compiled-nocpt|batched|batched-nocpt|\n\
                 \x20                      stackwalk|cct\n\
                 decode <bench>            run, capture, and decode example contexts\n\
                 report <bench>            run with telemetry; print a human-readable summary\n\
                 \x20                      (histograms as p50/p90/p99 upper bounds)\n\
                 \x20   --json             the full machine-readable report instead\n\
                 \x20   --encoder NAME     as for `run` (default: deltapath)\n\
                 \x20   --from FILE        read a saved report (JSON or JSONL) instead of running\n\
                 trace <bench>             like `report --json`, but printed as JSON lines\n\
                 \x20   --chrome FILE      write a Chrome trace-event file (deltapath.trace.v2)\n\
                 \x20                      of the span tree instead of printing JSONL\n\
                 flamegraph <bench>        folded flamegraph stacks (inferno-compatible) on stdout\n\
                 \x20   --contexts         decoded calling contexts weighted by entries (default)\n\
                 \x20   --spans            self-time of the analysis/audit/run span tree\n\
                 \x20   --encoder NAME     deltapath|deltapath-nocpt|compiled|compiled-nocpt|\n\
                 \x20                      batched|batched-nocpt|stackwalk\n\
                 \x20   --scope app|all    selective vs full encoding (default: app)\n\
                 \x20   --out FILE         write to FILE instead of stdout\n\
                 \x20   --check [--all]    validate flamegraphs against the stack-walk oracle\n\
                 lint <bench>|--all        statically audit the encoding plan (DP0xx diagnostics)\n\
                 \x20   --json             machine-readable report (schema deltapath.lint.v1)\n\
                 \x20   --deny-warnings    exit with failure on warnings, not just errors\n\
                 \x20   --scope app|all    selective vs full encoding (default: app)\n\
                 \x20   --width BITS       encoding integer width (default: 64)\n\
                 \x20   --workers N        parallel per-anchor audit workers (default: 1)\n\
                 \x20   --baseline FILE    incremental re-audit against a previously linted\n\
                 \x20                      deltapath.plan.v1 file (identical diagnostics,\n\
                 \x20                      only the impacted region re-runs)\n\
                 \x20   --plan-out FILE    write the audited plan (deltapath.plan.v1)\n\
                 import <file>             plan an external deltapath.graph.v1 call graph\n\
                 \x20   --lint             audit the resulting plan (DP0xx diagnostics)\n\
                 \x20   --dot              print the imported graph in Graphviz format\n\
                 \x20   --render           re-render the canonical deltapath.graph.v1 form\n\
                 \x20   --width BITS       encoding integer width (default: 64)\n\
                 \x20   --budget N         territory budget: bound anchor-free path counts\n\
                 \x20                      (extra anchors, near-linear planning; try 16-64)\n\
                 \x20   --workers N        parallel per-anchor audit workers (with --lint)\n\
                 \x20   --baseline FILE    incremental --lint against a deltapath.plan.v1 file\n\
                 \x20   --plan-out FILE    write the resulting plan (deltapath.plan.v1)\n\
                 diff <old> <new>          semantically compare two deltapath.plan.v1 files\n\
                 \x20                      (DP05x diagnostics; anchors, tables, territories,\n\
                 \x20                      SIDs, instructions)\n\
                 \x20   --json             machine-readable report (schema deltapath.diff.v1)\n\
                 generate                  write a seeded scale graph (deltapath.graph.v1)\n\
                 \x20   --methods N        graph size (default: 10000)\n\
                 \x20   --seed S           generator seed (default: 42)\n\
                 \x20   --out FILE         write to FILE instead of stdout"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(args: &[String]) -> Result<Program, String> {
    let name = args.first().ok_or("missing benchmark name")?;
    program(name).ok_or_else(|| {
        format!("unknown benchmark {name:?}; run `deltapath list` to see the available ones")
    })
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn scope_of(args: &[String]) -> Result<ScopeFilter, String> {
    match flag(args, "--scope").as_deref() {
        None | Some("app") => Ok(ScopeFilter::ApplicationOnly),
        Some("all") => Ok(ScopeFilter::All),
        Some(other) => Err(format!("unknown scope {other:?} (use app|all)")),
    }
}

fn width_of(args: &[String]) -> Result<EncodingWidth, String> {
    match flag(args, "--width") {
        None => Ok(EncodingWidth::U64),
        Some(w) => match w.parse::<u8>() {
            Ok(bits @ 1..=127) => Ok(EncodingWidth::new(bits)),
            _ => Err(format!("bad --width value {w:?} (use 1..=127)")),
        },
    }
}

fn cmd_list() -> Result<(), String> {
    println!("bundled benchmarks (seeded synthetic stand-ins for SPECjvm2008):");
    for bench in suite() {
        let p = bench.program();
        println!(
            "  {:<22} {:>5} classes {:>6} methods {:>6} call sites",
            bench.name,
            p.classes().len(),
            p.methods().len(),
            p.sites().len()
        );
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let scope = scope_of(args)?;
    let config = PlanConfig::default()
        .with_scope(scope)
        .with_width(width_of(args)?);
    let graph = CallGraph::build(
        &p,
        &GraphConfig {
            analysis: Analysis::Cha,
            scope,
            include_dynamic: false,
        },
    );
    let stats = GraphStats::compute(&p, &graph);
    println!("{}:", p.name());
    println!(
        "  call graph: {} nodes, {} edges, {} call sites ({} virtual), {} roots",
        stats.nodes,
        stats.edges,
        stats.call_sites,
        stats.virtual_call_sites,
        graph.roots().len()
    );
    let plan = EncodingPlan::analyze(&p, &config).map_err(|e| e.to_string())?;
    let enc = plan.encoding();
    println!(
        "  plan ({} encoding): {} instrumented methods, {} sites with ID arithmetic",
        config.width,
        plan.instrumented_method_count(),
        plan.instrumented_site_count()
    );
    println!(
        "  anchors: {} total ({} from overflow, {} analysis restarts)",
        enc.anchors.len(),
        enc.overflow_anchor_count(),
        enc.restarts
    );
    println!(
        "  encoding space: max ICC {} (max ID {})",
        enc.max_icc,
        enc.required_max_id()
    );
    println!("  SID sets: {}", plan.sids().set_count());
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let scope = scope_of(args)?;
    let graph = CallGraph::build(
        &p,
        &GraphConfig {
            analysis: Analysis::Cha,
            scope,
            include_dynamic: false,
        },
    );
    print!("{}", graph.to_dot(&p));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let encoder_name = flag(args, "--encoder").unwrap_or_else(|| "deltapath".to_owned());
    let plan_config = PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly);
    let plan = EncodingPlan::analyze(&p, &plan_config).map_err(|e| e.to_string())?;
    let nocpt = EncodingPlan::analyze(&p, &plan_config.clone().with_cpt(false))
        .map_err(|e| e.to_string())?;
    let vm_config = VmConfig::default().with_collect(CollectMode::Entries);

    let started = std::time::Instant::now();
    let (run, counts, unique) = match encoder_name.as_str() {
        "native" => {
            let mut vm = Vm::new(&p, vm_config);
            let run = vm
                .run(&mut NullEncoder, &mut NullCollector)
                .map_err(|e| e.to_string())?;
            (run, Default::default(), 0)
        }
        "pcc" => run_one(
            &p,
            vm_config,
            PccEncoder::from_plan(&plan, PccWidth::Bits32),
        )?,
        "deltapath" => run_one(&p, vm_config, DeltaEncoder::new(&plan))?,
        "deltapath-nocpt" => run_one(&p, vm_config, DeltaEncoder::new(&nocpt))?,
        "compiled" => {
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?
        }
        "compiled-nocpt" => {
            let compiled = nocpt.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?
        }
        "batched" => {
            let compiled = plan.compile();
            run_one(&p, vm_config, BatchedDeltaEncoder::new(&compiled))?
        }
        "batched-nocpt" => {
            let compiled = nocpt.compile();
            run_one(&p, vm_config, BatchedDeltaEncoder::new(&compiled))?
        }
        "stackwalk" => run_one(&p, vm_config, StackWalkEncoder::full())?,
        "cct" => run_one(&p, vm_config, CctEncoder::new())?,
        other => return Err(format!("unknown encoder {other:?}")),
    };
    let elapsed = started.elapsed();
    println!(
        "{} under {encoder_name}: {} calls, base cost {}, wall time {:.2?}",
        p.name(),
        run.calls,
        run.base_cost,
        elapsed
    );
    println!(
        "  encoder ops: adds {}, subs {}, hashes {}, sid checks {}, pushes {}, pops {}, walked {}",
        counts.adds,
        counts.subs,
        counts.hashes,
        counts.sid_checks,
        counts.pushes,
        counts.pops,
        counts.walked_frames
    );
    if unique > 0 {
        println!("  unique contexts captured: {unique}");
    }
    Ok(())
}

fn run_one<E: ContextEncoder>(
    p: &Program,
    vm_config: VmConfig,
    mut encoder: E,
) -> Result<(deltapath::RunStats, deltapath::OpCounts, usize), String> {
    let mut vm = Vm::new(p, vm_config);
    let mut stats = ContextStats::new();
    let run = vm
        .run(&mut encoder, &mut stats)
        .map_err(|e| e.to_string())?;
    Ok((run, encoder.counts(), stats.unique_contexts()))
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let p = load(args)?;
    let plan = EncodingPlan::analyze(
        &p,
        &PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly),
    )
    .map_err(|e| e.to_string())?;
    let mut vm = Vm::new(
        &p,
        VmConfig::default().with_collect(CollectMode::ObservesOnly),
    );
    let mut encoder = DeltaEncoder::new(&plan);
    let mut log = EventLog::default();
    vm.run(&mut encoder, &mut log).map_err(|e| e.to_string())?;

    let decoder = plan.decoder();
    let mut by_context: HashMap<Vec<String>, usize> = HashMap::new();
    let mut outside = 0usize;
    let mut errors = 0usize;
    for (_, at, capture) in &log.events {
        if plan.entry(*at).is_none() {
            // The event fired inside unencoded (library) code: under
            // selective encoding there is no context to decode there.
            outside += 1;
            continue;
        }
        let Capture::Delta(ctx) = capture else {
            continue;
        };
        match decoder.decode(ctx) {
            Ok(context) => {
                let pretty: Vec<String> = context.iter().map(|&m| p.method_name(m)).collect();
                *by_context.entry(pretty).or_default() += 1;
            }
            Err(_) => errors += 1,
        }
    }
    println!(
        "{}: {} events ({} in unencoded library code, skipped), {} distinct contexts, {} decode failures",
        p.name(),
        log.events.len(),
        outside,
        by_context.len(),
        errors
    );
    let mut ranked: Vec<_> = by_context.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (context, count) in ranked.iter().take(10) {
        println!("{count:>8}x  {}", context.join(" -> "));
    }
    Ok(())
}

/// Runs `bench` under `--encoder` with a hierarchical [`SpanProfiler`]
/// attached end to end — plan analysis, the static plan audit, and the VM
/// run all record their nested spans (and every metric) into it.
fn profiled_run(args: &[String]) -> Result<(Program, String, Arc<SpanProfiler>), String> {
    let p = load(args)?;
    let encoder_name = flag(args, "--encoder").unwrap_or_else(|| "deltapath".to_owned());
    let profiler = Arc::new(SpanProfiler::new());
    let sink: &dyn Telemetry = profiler.as_ref();
    let plan_config = PlanConfig::default().with_scope(ScopeFilter::ApplicationOnly);
    let vm_config = VmConfig::default()
        .with_collect(CollectMode::Entries)
        .with_telemetry(profiler.clone());
    let analyzed = |config: &PlanConfig| -> Result<EncodingPlan, String> {
        let plan = EncodingPlan::analyze_with(&p, config, sink).map_err(|e| e.to_string())?;
        audit_plan_with(&p, &plan, sink);
        Ok(plan)
    };
    match encoder_name.as_str() {
        "native" => {
            run_one(&p, vm_config, NullEncoder)?;
        }
        "pcc" => {
            let plan = analyzed(&plan_config)?;
            run_one(
                &p,
                vm_config,
                PccEncoder::from_plan(&plan, PccWidth::Bits32),
            )?;
        }
        "deltapath" => {
            let plan = analyzed(&plan_config)?;
            run_one(&p, vm_config, DeltaEncoder::new(&plan))?;
        }
        "deltapath-nocpt" => {
            let plan = analyzed(&plan_config.with_cpt(false))?;
            run_one(&p, vm_config, DeltaEncoder::new(&plan))?;
        }
        "compiled" => {
            let plan = analyzed(&plan_config)?;
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?;
        }
        "compiled-nocpt" => {
            let plan = analyzed(&plan_config.with_cpt(false))?;
            let compiled = plan.compile();
            run_one(&p, vm_config, CompiledDeltaEncoder::new(&compiled))?;
        }
        "batched" => {
            let plan = analyzed(&plan_config)?;
            let compiled = plan.compile();
            run_one(&p, vm_config, BatchedDeltaEncoder::new(&compiled))?;
        }
        "batched-nocpt" => {
            let plan = analyzed(&plan_config.with_cpt(false))?;
            let compiled = plan.compile();
            run_one(&p, vm_config, BatchedDeltaEncoder::new(&compiled))?;
        }
        "stackwalk" => {
            run_one(&p, vm_config, StackWalkEncoder::full())?;
        }
        "cct" => {
            run_one(&p, vm_config, CctEncoder::new())?;
        }
        other => return Err(format!("unknown encoder {other:?}")),
    }
    Ok((p, encoder_name, profiler))
}

/// Runs `bench` instrumented (see [`profiled_run`]) and freezes the result
/// into a [`RunReport`].
fn telemetry_report(args: &[String]) -> Result<RunReport, String> {
    let (p, encoder_name, profiler) = profiled_run(args)?;
    Ok(profiler
        .report(p.name())
        .with_meta("benchmark", p.name())
        .with_meta("encoder", &encoder_name)
        .with_meta("scope", "app"))
}

/// Parses a saved report in either serialization: a single JSON document
/// (`report` output) or JSON lines (`trace` output).
fn parse_report(text: &str) -> Result<RunReport, String> {
    RunReport::from_json(text)
        .or_else(|_| RunReport::from_jsonl(text))
        .map_err(|e| format!("not a run report in JSON or JSONL form: {e}"))
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let report = if let Some(path) = flag(args, "--from") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        parse_report(&text)?
    } else {
        telemetry_report(args)?
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print_report_summary(&report);
    }
    Ok(())
}

/// The human-readable face of a [`RunReport`]: every counter and gauge,
/// histograms condensed to p50/p90/p99 upper bounds (the inclusive limit
/// of the log2 bucket holding the quantile) instead of raw bucket dumps.
/// `--json` keeps the full bucket data under the stable schema.
fn print_report_summary(r: &RunReport) {
    let meta: Vec<String> = r.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("{} ({})", r.name, meta.join(", "));
    if !r.counters.is_empty() {
        println!("counters:");
        for (name, value) in &r.counters {
            println!("  {name:<44} {value}");
        }
    }
    if !r.gauges.is_empty() {
        println!("gauges:");
        for (name, value) in &r.gauges {
            println!("  {name:<44} {value}");
        }
    }
    if !r.histograms.is_empty() {
        println!("histograms:");
        for (name, h) in &r.histograms {
            println!(
                "  {name:<44} n={} p50<={} p90<={} p99<={} sum={}",
                h.count,
                h.quantile_limit(0.5),
                h.quantile_limit(0.9),
                h.quantile_limit(0.99),
                h.sum
            );
        }
    }
    println!(
        "events: {} buffered, {} dropped (see `deltapath trace` for the full stream)",
        r.events.len(),
        r.dropped_events
    );
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let chrome = flag(args, "--chrome");
    let (p, encoder_name, profiler) = profiled_run(args)?;
    if let Some(path) = chrome {
        let snapshot = profiler.snapshot();
        let trace = snapshot.chrome_trace(p.name());
        std::fs::write(&path, &trace).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!(
            "wrote Chrome trace for {} under {encoder_name} to {path} \
             ({} lanes, {} span nodes; load in chrome://tracing or Perfetto)",
            p.name(),
            snapshot.lanes.len(),
            snapshot.tree.len()
        );
        return Ok(());
    }
    let report = profiler
        .report(p.name())
        .with_meta("benchmark", p.name())
        .with_meta("encoder", &encoder_name)
        .with_meta("scope", "app");
    print!("{}", report.to_jsonl());
    Ok(())
}

/// Runs `p` under `encoder`, counting entries per distinct captured context
/// with a [`ContextProfile`].
fn profile_entries<E: ContextEncoder>(
    p: &Program,
    mut encoder: E,
) -> Result<ContextProfile, String> {
    let mut vm = Vm::new(p, VmConfig::default().with_collect(CollectMode::Entries));
    let mut profile = ContextProfile::new();
    vm.run(&mut encoder, &mut profile)
        .map_err(|e| e.to_string())?;
    Ok(profile)
}

/// The *context flamegraph*: folded call stacks weighted by entry counts,
/// decoded from the captures `encoder_name` produced under `scope`.
fn context_folded(
    p: &Program,
    encoder_name: &str,
    scope: ScopeFilter,
) -> Result<(FoldedStacks, u64), String> {
    let plan_config = PlanConfig::default().with_scope(scope);
    let cpt = !encoder_name.ends_with("-nocpt");
    let plan = EncodingPlan::analyze(p, &plan_config.with_cpt(cpt)).map_err(|e| e.to_string())?;
    let profile = match encoder_name {
        "deltapath" | "deltapath-nocpt" => profile_entries(p, DeltaEncoder::new(&plan))?,
        "compiled" | "compiled-nocpt" => {
            let compiled = plan.compile();
            profile_entries(p, CompiledDeltaEncoder::new(&compiled))?
        }
        "batched" | "batched-nocpt" => {
            let compiled = plan.compile();
            profile_entries(p, BatchedDeltaEncoder::new(&compiled))?
        }
        "stackwalk" => profile_entries(p, StackWalkEncoder::full())?,
        other => {
            return Err(format!(
                "encoder {other:?} does not produce decodable contexts \
                 (use deltapath|deltapath-nocpt|compiled|compiled-nocpt|\
                 batched|batched-nocpt|stackwalk)"
            ))
        }
    };
    Ok(profile.folded(p, &plan.decoder()))
}

/// Validates one benchmark's flamegraph pipeline end to end against the
/// [`StackWalkEncoder`] shadow-stack oracle, under full-scope encoding.
///
/// The oracle is the walk run's stacks *filtered to plan-encoded methods*
/// (the same ground truth the differential suite uses), keeping only
/// entries whose true stack never crosses unencoded code. For closed-world
/// benchmarks that is every entry, and the DeltaPath/compiled context
/// flamegraphs must match it *exactly* — same stacks, same entry counts,
/// nothing skipped. Benchmarks with dynamic class loading keep the exact
/// check on the fully-encoded subset (each oracle stack's count is a lower
/// bound on the decoded count, since a path through dynamic code may
/// legitimately decode to the same filtered stack), plus conservation:
/// both runs must account for every recorded entry. In all cases the
/// DeltaPath and compiled encoders must agree stack for stack, the folded
/// text must round-trip through [`FoldedStacks::parse`], and the span
/// flamegraph's Chrome trace must be well-formed `deltapath.trace.v2`
/// JSON.
fn check_flamegraph(p: &Program) -> Result<(), String> {
    use deltapath::ir::Origin;
    use deltapath::runtime::fold_path;

    let name = p.name().to_owned();
    let closed = p.classes().iter().all(|c| c.origin() != Origin::Dynamic);
    let plan = EncodingPlan::analyze(p, &PlanConfig::default().with_scope(ScopeFilter::All))
        .map_err(|e| e.to_string())?;

    // The oracle map: walked stacks filtered to planned methods.
    let walk_profile = profile_entries(p, StackWalkEncoder::full())?;
    let mut oracle = FoldedStacks::new();
    let mut outside = 0u64; // entries at methods the plan never encoded
    let mut through_dynamic = 0u64; // planned entries reached across unencoded frames
    for (capture, count) in walk_profile.counts() {
        let Capture::Walk(stack) = capture else {
            unreachable!("walk run captures Walk")
        };
        let at = *stack.last().expect("non-empty walked stack");
        if plan.entry(at).is_none() {
            outside += count;
        } else if stack.iter().any(|&m| plan.entry(m).is_none()) {
            through_dynamic += count;
        } else {
            oracle.add(&fold_path(p, stack), count);
        }
    }

    let (delta, delta_skipped) = context_folded(p, "deltapath", ScopeFilter::All)?;
    let (compiled, compiled_skipped) = context_folded(p, "compiled", ScopeFilter::All)?;
    if delta != compiled || delta_skipped != compiled_skipped {
        return Err(format!(
            "{name}: DeltaPath and compiled context flamegraphs diverge"
        ));
    }
    if delta.total() + delta_skipped != walk_profile.total() {
        return Err(format!(
            "{name}: entry conservation failed ({} folded + {} skipped != {} recorded)",
            delta.total(),
            delta_skipped,
            walk_profile.total()
        ));
    }
    if closed {
        if delta != oracle || delta_skipped > 0 || outside > 0 || through_dynamic > 0 {
            let diff = delta.iter().find(|&(stack, w)| {
                oracle.iter().find(|&(s, _)| s == stack).map(|(_, ow)| ow) != Some(w)
            });
            return Err(format!(
                "{name}: context flamegraph diverges from the stack-walk oracle \
                 ({delta_skipped} skipped; first difference: {diff:?})"
            ));
        }
    } else {
        for (stack, truth_count) in oracle.iter() {
            let decoded = delta.iter().find(|&(s, _)| s == stack).map(|(_, w)| w);
            if decoded.is_none() || decoded < Some(truth_count) {
                return Err(format!(
                    "{name}: oracle stack {stack:?} has {truth_count} entries but \
                     the context flamegraph decoded {decoded:?}"
                ));
            }
        }
    }
    let rendered = delta.render();
    let parsed = FoldedStacks::parse(&rendered)
        .map_err(|e| format!("{name}: folded output does not re-parse: {e}"))?;
    if parsed != delta {
        return Err(format!("{name}: folded render/parse round-trip lost data"));
    }

    // Span side: an instrumented run must produce a non-empty span tree
    // whose Chrome trace export is well-formed.
    let run_args = vec![name.clone()];
    let (_, _, profiler) = profiled_run(&run_args)?;
    let snapshot = profiler.snapshot();
    if snapshot.tree.total_at(&["vm.run"]).is_none() {
        return Err(format!("{name}: span tree is missing the vm.run root span"));
    }
    if snapshot.folded().is_empty() {
        return Err(format!("{name}: span flamegraph is empty"));
    }
    let chrome = snapshot.chrome_trace(&name);
    let parsed =
        Json::parse(&chrome).map_err(|e| format!("{name}: Chrome trace is not valid JSON: {e}"))?;
    let schema = parsed
        .get("otherData")
        .and_then(|d| d.get("schema"))
        .and_then(Json::as_str);
    if schema != Some(deltapath::telemetry::TRACE_SCHEMA) {
        return Err(format!("{name}: Chrome trace schema tag missing or wrong"));
    }
    println!(
        "{name}: ok ({} context stacks vs {} oracle stacks{}, {} span nodes, {} lanes)",
        delta.len(),
        oracle.len(),
        if closed {
            String::new()
        } else {
            format!(", {through_dynamic}+{outside} entries touching dynamic code")
        },
        snapshot.tree.len(),
        snapshot.lanes.len()
    );
    Ok(())
}

/// `deltapath flamegraph`: folded-stack output (`--contexts` decodes
/// captured calling contexts, `--spans` reports span-tree self time), or
/// `--check` validation of the whole pipeline against the stack-walk
/// oracle (the CI gate, usually with `--all`).
fn cmd_flamegraph(args: &[String]) -> Result<(), String> {
    let spans_mode = args.iter().any(|a| a == "--spans");
    let contexts_mode = args.iter().any(|a| a == "--contexts");
    if spans_mode && contexts_mode {
        return Err("--contexts and --spans are mutually exclusive".to_owned());
    }
    if args.iter().any(|a| a == "--check") {
        let programs: Vec<Program> = if args.iter().any(|a| a == "--all") {
            suite().iter().map(|b| b.program()).collect()
        } else {
            vec![load(args)?]
        };
        for p in &programs {
            check_flamegraph(p)?;
        }
        return Ok(());
    }
    let text = if spans_mode {
        let (_, _, profiler) = profiled_run(args)?;
        profiler.snapshot().folded().render()
    } else {
        let p = load(args)?;
        let encoder_name = flag(args, "--encoder").unwrap_or_else(|| "deltapath".to_owned());
        let (stacks, skipped) = context_folded(&p, &encoder_name, scope_of(args)?)?;
        if skipped > 0 {
            eprintln!("note: {skipped} entries had undecodable captures and were skipped");
        }
        stacks.render()
    };
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            println!(
                "wrote {} folded stack lines to {path} (render with inferno/flamegraph.pl)",
                text.lines().count()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Reads and parses a `deltapath.plan.v1` file.
fn load_plan(path: &str) -> Result<ImportedPlan, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    match parse_plan(std::io::BufReader::new(file)) {
        Ok(p) => Ok(p),
        Err(PlanParseError::Io(e)) => Err(format!("cannot read {path:?}: {e}")),
        Err(PlanParseError::Invalid(diags)) => {
            for d in &diags {
                eprintln!("{path}: {d}");
            }
            Err(format!(
                "{path}: plan parse failed with {} diagnostic(s)",
                diags.len()
            ))
        }
    }
}

/// Writes a plan to `path` in canonical `deltapath.plan.v1` form.
fn write_plan(plan: &EncodingPlan, name: &str, path: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    render_plan(plan, name, &mut out).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Parses `--workers N` into [`AuditOptions`] (no baseline capture — the
/// CLI re-derives baselines from plan files instead of holding them).
fn audit_options_of(args: &[String]) -> Result<AuditOptions, String> {
    let workers = match flag(args, "--workers") {
        None => 1,
        Some(w) => w
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad --workers value {w:?} (use an integer >= 1)"))?,
    };
    Ok(AuditOptions::default()
        .with_workers(workers)
        .without_baseline())
}

/// Audits `plan` fully, or incrementally against `--baseline FILE` (a
/// previously linted `deltapath.plan.v1` — the file's clean lint is the
/// certification the delta audit builds on). Prints the certified /
/// re-audited split in incremental mode.
fn audited_report(
    p: &Program,
    plan: &EncodingPlan,
    args: &[String],
    quiet: bool,
) -> Result<AuditReport, String> {
    let opts = audit_options_of(args)?;
    match flag(args, "--baseline") {
        Some(path) => {
            let old = load_plan(&path)?;
            let baseline = AuditBaseline::assume_clean(&old.plan);
            let outcome = audit_delta(p, plan, &old.plan, &baseline, &opts, &NullTelemetry);
            if !quiet {
                eprintln!(
                    "incremental audit vs {path}: {} anchors certified, {} re-audited",
                    outcome.certified, outcome.reaudited
                );
            }
            Ok(outcome.report)
        }
        None => Ok(audit_plan_full(p, plan, &opts, &NullTelemetry).report),
    }
}

/// Statically audits one benchmark's (or every benchmark's) encoding plan
/// with [`deltapath::audit_plan`] and reports the `DP0xx` diagnostics.
/// Exits with failure on any error-severity finding, or on any finding at
/// all under `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let scope = scope_of(args)?;
    let config = PlanConfig::default()
        .with_scope(scope)
        .with_width(width_of(args)?);

    let all = args.iter().any(|a| a == "--all");
    let programs: Vec<Program> = if all {
        suite().iter().map(|b| b.program()).collect()
    } else {
        vec![load(args)?]
    };
    let plan_out = flag(args, "--plan-out");
    if plan_out.is_some() && all {
        return Err("--plan-out needs a single benchmark, not --all".to_owned());
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for p in &programs {
        let plan = EncodingPlan::analyze(p, &config)
            .map_err(|e| format!("{}: plan analysis failed: {e}", p.name()))?;
        let report = audited_report(p, &plan, args, json)?;
        errors += report.errors();
        warnings += report.warnings();
        if json {
            println!("{}", report.to_json(p.name()));
        } else {
            for d in &report.diagnostics {
                println!("{}: {d}", p.name());
            }
            println!(
                "{}: {} nodes, {} edges, {} anchors — {} errors, {} warnings",
                p.name(),
                report.nodes,
                report.edges,
                report.anchors,
                report.errors(),
                report.warnings()
            );
        }
        if let Some(path) = &plan_out {
            write_plan(&plan, p.name(), path)?;
        }
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        Err(format!(
            "lint failed: {errors} errors, {warnings} warnings across {} plans",
            programs.len()
        ))
    } else {
        Ok(())
    }
}

/// `deltapath diff <old.plan> <new.plan>`: semantically compare two plan
/// files layer by layer and report classified `DP05x` differences.
/// Differences are informational — the exit status only reflects whether
/// the files could be read and compared.
fn cmd_diff(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [old_path, new_path] = files[..] else {
        return Err("usage: deltapath diff <old.plan> <new.plan> [--json]".to_owned());
    };
    let old = load_plan(old_path)?;
    let new = load_plan(new_path)?;
    let diff = diff_plans(&old.plan, &new.plan);
    if json {
        println!("{}", diff.to_json(&old.name, &new.name));
        return Ok(());
    }
    for d in &diff.diagnostics {
        println!("{d}");
    }
    if diff.is_empty() {
        println!("{old_path} and {new_path} are semantically identical");
    } else {
        let counts: Vec<String> = diff
            .counts()
            .iter()
            .map(|(code, n)| format!("{} x{n}", code.code()))
            .collect();
        println!(
            "{old_path} ({} nodes) -> {new_path} ({} nodes): {} difference(s) [{}]",
            diff.old_nodes,
            diff.new_nodes,
            diff.counts().values().sum::<usize>(),
            counts.join(", ")
        );
    }
    Ok(())
}

/// `deltapath import <file>`: parse an external `deltapath.graph.v1` call
/// graph, plan it end to end against a skeleton program, and summarize (or
/// `--lint` / `--dot` / `--render` it).
fn cmd_import(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing graph file (deltapath.graph.v1 format)")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let imported = match parse_graph(std::io::BufReader::new(file)) {
        Ok(g) => g,
        Err(ImportError::Io(e)) => return Err(format!("cannot read {path:?}: {e}")),
        Err(err) => {
            let diags = err.diagnostics();
            for d in diags {
                eprintln!("{path}: {d}");
            }
            return Err(format!(
                "{path}: import failed with {} diagnostic(s)",
                diags.len()
            ));
        }
    };
    for w in &imported.warnings {
        eprintln!("{path}: {w}");
    }
    let graph = imported.graph;
    let p = skeleton_for_graph(&imported.name, &graph);
    if args.iter().any(|a| a == "--render") {
        let mut out = std::io::stdout().lock();
        render_graph(&graph, &imported.name, &mut out)
            .map_err(|e| format!("cannot write to stdout: {e}"))?;
        return Ok(());
    }
    if args.iter().any(|a| a == "--dot") {
        let mut out = std::io::stdout().lock();
        graph
            .write_dot(&p, &mut out)
            .map_err(|e| format!("cannot write to stdout: {e}"))?;
        return Ok(());
    }
    let mut config = PlanConfig::default()
        .with_scope(ScopeFilter::All)
        .with_width(width_of(args)?)
        .with_batch_overflow();
    if let Some(b) = flag(args, "--budget") {
        let budget = b
            .parse::<u64>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| format!("bad --budget value {b:?} (use an integer >= 1)"))?;
        config = config.with_territory_budget(budget);
    }
    let nodes = graph.node_count();
    let edges = graph.edge_count();
    let poly_sites = graph
        .instrumented_sites()
        .iter()
        .filter(|&&s| graph.site_edges(s).len() > 1)
        .count();
    let lint = args.iter().any(|a| a == "--lint");
    let plan = EncodingPlan::from_graph(&p, graph, &config).map_err(|e| e.to_string())?;
    println!(
        "{} ({path}): {nodes} nodes, {edges} edges, {poly_sites} polymorphic sites",
        imported.name
    );
    let enc = plan.encoding();
    println!(
        "  plan ({} encoding): {} instrumented methods, {} sites with ID arithmetic",
        config.width,
        plan.instrumented_method_count(),
        plan.instrumented_site_count()
    );
    println!(
        "  anchors: {} total ({} from overflow, {} analysis restarts)",
        enc.anchors.len(),
        enc.overflow_anchor_count(),
        enc.restarts
    );
    println!(
        "  encoding space: max ICC {} (max ID {})",
        enc.max_icc,
        enc.required_max_id()
    );
    if let Some(path) = flag(args, "--plan-out") {
        write_plan(&plan, &imported.name, &path)?;
        println!("  wrote plan ({}) to {path}", deltapath::PLAN_SCHEMA);
    }
    if lint {
        let report = audited_report(&p, &plan, args, false)?;
        for d in &report.diagnostics {
            println!("{}: {d}", imported.name);
        }
        println!(
            "  audit: {} errors, {} warnings",
            report.errors(),
            report.warnings()
        );
        if report.errors() > 0 {
            return Err(format!(
                "lint failed: {} errors in the imported plan",
                report.errors()
            ));
        }
    }
    Ok(())
}

/// `deltapath generate`: write a seeded scale call graph in
/// `deltapath.graph.v1` form, ready for `deltapath import`.
fn cmd_generate(args: &[String]) -> Result<(), String> {
    let methods = match flag(args, "--methods") {
        None => 10_000,
        Some(m) => m
            .parse::<usize>()
            .ok()
            .filter(|&m| m >= 2)
            .ok_or_else(|| format!("bad --methods value {m:?} (use an integer >= 2)"))?,
    };
    let seed = match flag(args, "--seed") {
        None => 42,
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("bad --seed value {s:?}"))?,
    };
    let cfg = ScaleConfig::default().with_methods(methods).with_seed(seed);
    let graph = cfg.build_graph();
    let name = format!("scale-{methods}-{seed}");
    match flag(args, "--out") {
        Some(path) => {
            let file =
                std::fs::File::create(&path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            render_graph(&graph, &name, &mut out)
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            println!(
                "wrote {} ({} nodes, {} edges) to {path}",
                name,
                graph.node_count(),
                graph.edge_count()
            );
        }
        None => {
            let mut out = std::io::stdout().lock();
            render_graph(&graph, &name, &mut out)
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["compress", "--scope", "all", "--width", "32"]);
        assert_eq!(flag(&a, "--scope").as_deref(), Some("all"));
        assert_eq!(flag(&a, "--width").as_deref(), Some("32"));
        assert_eq!(flag(&a, "--missing"), None);
        // Flag at the end without a value.
        let b = args(&["x", "--scope"]);
        assert_eq!(flag(&b, "--scope"), None);
    }

    #[test]
    fn scope_parsing() {
        assert_eq!(
            scope_of(&args(&["x"])).unwrap(),
            ScopeFilter::ApplicationOnly
        );
        assert_eq!(
            scope_of(&args(&["x", "--scope", "app"])).unwrap(),
            ScopeFilter::ApplicationOnly
        );
        assert_eq!(
            scope_of(&args(&["x", "--scope", "all"])).unwrap(),
            ScopeFilter::All
        );
        assert!(scope_of(&args(&["x", "--scope", "bogus"])).is_err());
    }

    #[test]
    fn width_parsing() {
        assert_eq!(width_of(&args(&["x"])).unwrap(), EncodingWidth::U64);
        assert_eq!(
            width_of(&args(&["x", "--width", "32"])).unwrap(),
            EncodingWidth::U32
        );
        // Out-of-range or garbage widths are errors, not panics.
        assert!(width_of(&args(&["x", "--width", "0"])).is_err());
        assert!(width_of(&args(&["x", "--width", "200"])).is_err());
        assert!(width_of(&args(&["x", "--width", "wide"])).is_err());
    }

    #[test]
    fn load_rejects_unknown_benchmarks() {
        assert!(load(&args(&["not-a-benchmark"])).is_err());
        assert!(load(&[]).is_err());
    }
}
